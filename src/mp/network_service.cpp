#include "mp/network_service.h"

#include <chrono>

#include "mp/response_cell.h"
#include "obs/backend_metrics.h"
#include "util/assert.h"

namespace cnet::mp {
namespace {

/// The paper's W is busy time, not blocked time — same realization as the
/// rt delay hook (run::/rt:: keep their own copy; mp sits below run in the
/// layering, so it cannot borrow that one).
void busy_wait_ns(std::uint64_t ns) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
    // burn
  }
}

}  // namespace

NetworkService::NetworkService(topo::Network net, Options options)
    : net_(std::move(net)),
      runtime_(ActorRuntime::Options{options.workers, options.engine}),
      node_counts_(net_.node_count(), 0),
      output_counts_(net_.output_width(), 0) {
#if CNET_OBS
  if (options.metrics != nullptr) {
    metrics_ = options.metrics;
    metrics_->attach(static_cast<std::uint32_t>(net_.node_count()) + net_.output_width());
    runtime_.observe_queue_depth(&metrics_->queue_depth);
  }
#endif
  // Balancer actors: route the token to output port (count++ mod fan_out)
  // and forward it to the next balancer actor or counter actor. A non-zero
  // payload is the token's per-node delay W in ns, busy-waited after the
  // transition and carried along unchanged.
  node_actors_.reserve(net_.node_count());
  for (topo::NodeId id = 0; id < net_.node_count(); ++id) {
    node_actors_.push_back(runtime_.add_actor([this, id](ActorId, const Message& message) {
      const topo::Node& node = net_.node(id);
#if CNET_OBS
      // Sharded by the actor id: an actor is single-threaded, so its cells
      // are effectively uncontended.
      if (metrics_ != nullptr) {
        metrics_->node_messages.add(id);
        metrics_->actor_messages.add(id, id);
      }
#endif
      const std::uint64_t t = node_counts_[id]++;
      const topo::OutLink next = node.out[t % node.fan_out];
      if (message.payload != 0) busy_wait_ns(message.payload);
      if (next.node == topo::kNoNode) {
        runtime_.send(counter_actors_[next.port], message);
      } else {
        runtime_.send(node_actors_[next.node], message);
      }
    }));
  }
  // Counter actors: assign the value and wake the client through the
  // engine's completion protocol.
  const bool futex_cells = options.engine == Engine::kLockFree;
  counter_actors_.reserve(net_.output_width());
  for (std::uint32_t port = 0; port < net_.output_width(); ++port) {
    counter_actors_.push_back(
        runtime_.add_actor([this, port, futex_cells](ActorId, const Message& message) {
#if CNET_OBS
          if (metrics_ != nullptr) {
            const auto actor = static_cast<std::uint32_t>(net_.node_count()) + port;
            metrics_->counter_messages.add(actor);
            metrics_->actor_messages.add(actor, actor);
          }
#endif
          const std::uint64_t a = output_counts_[port]++;
          const std::uint64_t value = port + a * net_.output_width();
          auto* cell = static_cast<ResponseCell*>(message.context);
          if (futex_cells) {
            cell->complete_futex(value);
          } else {
            cell->complete_locked(value);
          }
        }));
  }
  runtime_.start();
}

std::uint64_t NetworkService::count_delayed(std::uint32_t input, std::uint64_t wait_ns) {
  CNET_CHECK(input < net_.input_width());
#if CNET_OBS
  const std::uint64_t t_start = metrics_ != nullptr ? obs::now_ns() : 0;
#endif
  ResponseCell* cell = ResponseCellCache::acquire();
  runtime_.send(node_actors_[net_.inputs()[input].node], Message{wait_ns, cell});
  const std::uint64_t value = runtime_.engine() == Engine::kLockFree ? cell->await_futex()
                                                                     : cell->await_locked();
  ResponseCellCache::release(cell);
#if CNET_OBS
  if (metrics_ != nullptr) {
    metrics_->tokens.add(input);
    metrics_->count_latency_ns.record(input, obs::now_ns() - t_start);
  }
#endif
  return value;
}

}  // namespace cnet::mp
