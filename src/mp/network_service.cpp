#include "mp/network_service.h"

#include <chrono>
#include <thread>

#include "fault/injector.h"
#include "mp/response_cell.h"
#include "obs/backend_metrics.h"
#include "sched/trace.h"
#include "util/assert.h"

namespace cnet::mp {
namespace {

/// The paper's W is busy time, not blocked time — same realization as the
/// rt delay hook (run::/rt:: keep their own copy; mp sits below run in the
/// layering, so it cannot borrow that one).
void busy_wait_ns(std::uint64_t ns) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
    // burn
  }
}

/// The destructor's drain budget. Tokens cannot be lost (mailboxes are
/// reliable, handlers always forward or complete), so quiescence is reached
/// as soon as the workers catch up; the bound exists to turn a hypothetical
/// lost token into a loud assertion instead of an unbounded hang — or,
/// worse, a use-after-free inside a worker once teardown proceeds.
constexpr std::uint64_t kDtorDrainNs = 30'000'000'000ull;

}  // namespace

ActorRuntime::Options NetworkService::runtime_options(const Options& options) {
  ActorRuntime::Options rt;
  rt.workers = options.workers;
  rt.engine = options.engine;
  if (options.fault != nullptr && options.fault->plan().has_pauses()) {
    fault::Injector* inj = options.fault;
    rt.park_point = [inj](std::uint32_t wid) { return inj->pause_ns(wid); };
  }
  return rt;
}

NetworkService::NetworkService(topo::Network net, Options options)
    : net_(std::move(net)),
      fault_(options.fault),
      runtime_(runtime_options(options)),
      node_counts_(net_.node_count(), 0),
      output_counts_(net_.output_width(), 0) {
#if CNET_OBS
  if (options.metrics != nullptr) {
    metrics_ = options.metrics;
    metrics_->attach(static_cast<std::uint32_t>(net_.node_count()) + net_.output_width());
    runtime_.observe_queue_depth(&metrics_->queue_depth);
  }
#endif
  // Balancer actors: route the token to output port (count++ mod fan_out)
  // and forward it to the next balancer actor or counter actor. A non-zero
  // payload is the token's per-node delay W in ns, busy-waited after the
  // transition and carried along unchanged.
  node_actors_.reserve(net_.node_count());
  for (topo::NodeId id = 0; id < net_.node_count(); ++id) {
    node_actors_.push_back(runtime_.add_actor([this, id](ActorId, const Message& message) {
      const topo::Node& node = net_.node(id);
#if CNET_OBS
      // Sharded by the actor id: an actor is single-threaded, so its cells
      // are effectively uncontended.
      if (metrics_ != nullptr) {
        metrics_->node_messages.add(id);
        metrics_->actor_messages.add(id, id);
      }
#endif
      const std::uint64_t t = node_counts_[id]++;
      const topo::OutLink next = node.out[t % node.fan_out];
      if (message.payload != 0) busy_wait_ns(message.payload);
      std::uint64_t stall = 0;
      if (fault_ != nullptr) [[unlikely]] {
        // Stall: the token lingers on this hop (keyed by the node's layer so
        // stall:p:ns:hop plans can target one stage of the network). Delay:
        // the forward itself is late. Both are busy time on the hosting
        // worker — exactly a slow link in the asynchronous model.
        stall = fault_->stall_ns(id, node.layer);
        if (stall != 0) busy_wait_ns(stall);
        const std::uint32_t to = next.node == topo::kNoNode
                                     ? static_cast<std::uint32_t>(net_.node_count()) + next.port
                                     : next.node;
        const std::uint64_t delay = fault_->delivery_delay_ns(to);
        if (delay != 0) busy_wait_ns(delay);
      }
      if (recorder_ != nullptr) [[unlikely]] {
        recorder_->hop(message.context, id, static_cast<std::uint32_t>(t % node.fan_out), stall);
      }
      if (next.node == topo::kNoNode) {
        runtime_.send(counter_actors_[next.port], message);
      } else {
        runtime_.send(node_actors_[next.node], message);
      }
    }));
  }
  // Counter actors: assign the value and wake the client through the
  // engine's completion protocol. A completion that loses to a timed-out
  // waiter parks the value and donates the abandoned cell back to the
  // arena (see mp/response_cell.h for the ownership handoff).
  const bool futex_cells = options.engine == Engine::kLockFree;
  counter_actors_.reserve(net_.output_width());
  for (std::uint32_t port = 0; port < net_.output_width(); ++port) {
    counter_actors_.push_back(
        runtime_.add_actor([this, port, futex_cells](ActorId, const Message& message) {
#if CNET_OBS
          if (metrics_ != nullptr) {
            const auto actor = static_cast<std::uint32_t>(net_.node_count()) + port;
            metrics_->counter_messages.add(actor);
            metrics_->actor_messages.add(actor, actor);
          }
#endif
          const std::uint64_t a = output_counts_[port]++;
          const std::uint64_t value = port + a * net_.output_width();
          auto* cell = static_cast<ResponseCell*>(message.context);
          // Commit before completing: the moment the client wakes, the cell
          // can be released and reissued, and the recorder keys on it.
          if (recorder_ != nullptr) [[unlikely]] recorder_->commit(cell, value);
          const bool delivered =
              futex_cells ? cell->complete_futex(value) : cell->complete_locked(value);
          if (!delivered) {
            park_value(value);
            ResponseCellCache::donate_abandoned(cell);
          }
          // Last: a drain that observes zero must observe this token's
          // delivery (or parking) too.
          in_flight_.fetch_sub(1, std::memory_order_release);
        }));
  }
  runtime_.start();
}

NetworkService::~NetworkService() {
  // The actor-id tables and actor-local count vectors are declared after
  // runtime_, so they are destroyed before the workers join; any token
  // still hopping at that point — possible exactly when a deadline
  // abandoned it — would be a use-after-free inside a handler. Establish
  // quiescence first.
  const DrainReport report = drain(kDtorDrainNs);
  CNET_CHECK_MSG(report.quiescent, "NetworkService destroyed with tokens still in flight");
}

std::uint64_t NetworkService::count_delayed(std::uint32_t input, std::uint64_t wait_ns) {
  CNET_CHECK(input < net_.input_width());
  std::uint64_t parked = 0;
  if (try_pop_parked(&parked)) return parked;
#if CNET_OBS
  const std::uint64_t t_start = metrics_ != nullptr ? obs::now_ns() : 0;
#endif
  ResponseCell* cell = ResponseCellCache::acquire();
  if (recorder_ != nullptr) [[unlikely]] recorder_->issue(cell, input);
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  runtime_.send(node_actors_[net_.inputs()[input].node], Message{wait_ns, cell});
  const std::uint64_t value = runtime_.engine() == Engine::kLockFree ? cell->await_futex()
                                                                     : cell->await_locked();
  ResponseCellCache::release(cell);
#if CNET_OBS
  if (metrics_ != nullptr) {
    metrics_->tokens.add(input);
    metrics_->count_latency_ns.record(input, obs::now_ns() - t_start);
  }
#endif
  return value;
}

NetworkService::TimedCount NetworkService::count_until(std::uint32_t input,
                                                       std::uint64_t wait_ns,
                                                       std::uint64_t timeout_ns) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(timeout_ns);
  return count_collect_until(count_begin(input, wait_ns), deadline);
}

NetworkService::Pending NetworkService::count_begin(std::uint32_t input,
                                                    std::uint64_t wait_ns) {
  CNET_CHECK(input < net_.input_width());
  Pending pending;
  pending.input = input;
  if (try_pop_parked(&pending.value)) return pending;  // cell stays null
#if CNET_OBS
  pending.start_ns = metrics_ != nullptr ? obs::now_ns() : 0;
#endif
  pending.cell = ResponseCellCache::acquire();
  if (recorder_ != nullptr) [[unlikely]] recorder_->issue(pending.cell, input);
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  // send_queued, not send: the lock-free engine's inline fast path would
  // donate THIS thread to run the token's entire walk (stalls included),
  // which would serialize a burst of begins and make a deadline-bounded
  // collect unenforceable (a thread cannot time out work it is itself
  // executing). An asynchronously issued token is hosted by the workers
  // from hop one.
  runtime_.send_queued(node_actors_[net_.inputs()[input].node], Message{wait_ns, pending.cell});
  return pending;
}

std::uint64_t NetworkService::count_collect(const Pending& pending) {
  if (pending.cell == nullptr) return pending.value;
  const std::uint64_t value = runtime_.engine() == Engine::kLockFree
                                  ? pending.cell->await_futex()
                                  : pending.cell->await_locked();
  ResponseCellCache::release(pending.cell);
#if CNET_OBS
  if (metrics_ != nullptr && pending.start_ns != 0) {
    metrics_->tokens.add(pending.input);
    metrics_->count_latency_ns.record(pending.input, obs::now_ns() - pending.start_ns);
  }
#endif
  return value;
}

NetworkService::TimedCount NetworkService::count_collect_until(
    const Pending& pending, std::chrono::steady_clock::time_point deadline) {
  if (pending.cell == nullptr) return {true, pending.value};
  const ResponseCell::TimedWait wait = runtime_.engine() == Engine::kLockFree
                                           ? pending.cell->await_futex_until(deadline)
                                           : pending.cell->await_locked_until(deadline);
  if (!wait.ok) {
    // Abandoned: the cell now belongs to the late completer (it parks the
    // value and donates the cell to the arena) — no release here.
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  ResponseCellCache::release(pending.cell);
#if CNET_OBS
  if (metrics_ != nullptr && pending.start_ns != 0) {
    metrics_->tokens.add(pending.input);
    metrics_->count_latency_ns.record(pending.input, obs::now_ns() - pending.start_ns);
  }
#endif
  return {true, wait.value};
}

NetworkService::DrainReport NetworkService::drain(std::uint64_t deadline_ns) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::nanoseconds(deadline_ns);
  std::chrono::microseconds nap{1};
  DrainReport report;
  for (;;) {
    // Acquire pairs with the counter actors' release decrement: zero here
    // means every issued token's delivery (or parking) is visible.
    const std::uint64_t live = in_flight_.load(std::memory_order_acquire);
    if (live == 0) {
      report.quiescent = true;
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      report.strays = live;
      break;
    }
    std::this_thread::sleep_for(nap);
    if (nap < std::chrono::microseconds{256}) nap *= 2;
  }
  report.waited_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count());
  return report;
}

std::vector<std::uint64_t> NetworkService::take_parked() {
  const std::scoped_lock lock(parked_mutex_);
  parked_size_.store(0, std::memory_order_release);
  return std::exchange(parked_, {});
}

NetworkService::RobustnessStats NetworkService::robustness_stats() const {
  RobustnessStats s;
  s.in_flight = in_flight_.load(std::memory_order_acquire);
  s.deadline_timeouts = timeouts_.load(std::memory_order_relaxed);
  s.values_parked = parked_total_.load(std::memory_order_relaxed);
  s.values_reclaimed = reclaimed_total_.load(std::memory_order_relaxed);
  s.parked_now = parked_size_.load(std::memory_order_relaxed);
  return s;
}

bool NetworkService::try_pop_parked(std::uint64_t* value) {
  // Cheap probe first: with no faults the buffer is forever empty and the
  // hot path never touches the mutex.
  if (parked_size_.load(std::memory_order_acquire) == 0) return false;
  const std::scoped_lock lock(parked_mutex_);
  if (parked_.empty()) return false;
  *value = parked_.back();
  parked_.pop_back();
  parked_size_.store(parked_.size(), std::memory_order_release);
  reclaimed_total_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void NetworkService::park_value(std::uint64_t value) {
  const std::scoped_lock lock(parked_mutex_);
  parked_.push_back(value);
  parked_size_.store(parked_.size(), std::memory_order_release);
  parked_total_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace cnet::mp
