#include "mp/message_pool.h"

#include <atomic>

#include "util/assert.h"

namespace cnet::mp {
namespace {

/// Process-unique pool generations: lets a TLS cache entry tell a live pool
/// from a dead one whose address was reused.
std::atomic<std::uint64_t> g_pool_generation{0};

/// Cache slots per thread. A thread rarely touches more than one or two
/// pools at once (each lock-free ActorRuntime owns one); on overflow the
/// evicted entry's nodes are dropped — their slab storage is reclaimed when
/// the owning pool dies, so a drop wastes reuse, never memory.
constexpr std::uint32_t kCacheSlots = 4;

}  // namespace

struct MessagePool::Cache {
  const MessagePool* pool = nullptr;
  std::uint64_t generation = 0;
  MpscNode* head = nullptr;
  std::uint32_t size = 0;
};

namespace {

thread_local std::uint32_t tls_evict_cursor = 0;

}  // namespace

MessagePool::Cache* MessagePool::tls_slots() {
  thread_local Cache caches[kCacheSlots]{};
  return caches;
}

MessagePool::MessagePool()
    : generation_(g_pool_generation.fetch_add(1, std::memory_order_relaxed) + 1) {}

MessagePool::~MessagePool() = default;  // slabs_ frees every node ever made

MessagePool::Cache& MessagePool::cache_for_this_thread() {
  Cache* caches = tls_slots();
  for (std::uint32_t i = 0; i < kCacheSlots; ++i) {
    Cache& cache = caches[i];
    if (cache.pool == this && cache.generation == generation_) return cache;
  }
  // No live entry for this pool: claim a stale slot, else evict round-robin.
  // Either way the displaced nodes belong to a pool we cannot prove alive,
  // so they are dropped, not flushed (see the header).
  Cache* victim = nullptr;
  for (std::uint32_t i = 0; i < kCacheSlots; ++i) {
    if (caches[i].pool == nullptr) {
      victim = &caches[i];
      break;
    }
  }
  if (victim == nullptr) {
    victim = &caches[tls_evict_cursor++ % kCacheSlots];
  }
  victim->pool = this;
  victim->generation = generation_;
  victim->head = nullptr;
  victim->size = 0;
  return *victim;
}

MpscNode* MessagePool::acquire() {
  Cache& cache = cache_for_this_thread();
  if (cache.head == nullptr) refill(cache);
  MpscNode* node = cache.head;
  cache.head = node->next.load(std::memory_order_relaxed);
  --cache.size;
  return node;
}

void MessagePool::release(MpscNode* node) {
  Cache& cache = cache_for_this_thread();
  node->next.store(cache.head, std::memory_order_relaxed);
  cache.head = node;
  if (++cache.size >= kCacheMax) donate(cache);
}

void MessagePool::refill(Cache& cache) {
  const std::scoped_lock lock(mutex_);
  if (shared_head_ != nullptr) {
    ++refills_;
    std::uint32_t taken = 0;
    while (shared_head_ != nullptr && taken < kExchangeBatch) {
      MpscNode* node = shared_head_;
      shared_head_ = node->next.load(std::memory_order_relaxed);
      --shared_size_;
      node->next.store(cache.head, std::memory_order_relaxed);
      cache.head = node;
      ++taken;
    }
    cache.size += taken;
    return;
  }
  // Shared list dry: grow by one slab, handed whole to this cache.
  auto slab = std::make_unique<MpscNode[]>(kSlabNodes);
  for (std::uint32_t i = 0; i < kSlabNodes; ++i) {
    slab[i].next.store(cache.head, std::memory_order_relaxed);
    cache.head = &slab[i];
  }
  cache.size += kSlabNodes;
  slabs_.push_back(std::move(slab));
}

void MessagePool::donate(Cache& cache) {
  CNET_CHECK(cache.size >= kExchangeBatch);
  // Detach kExchangeBatch nodes from the cache head, then splice the chain
  // onto the shared list under the lock.
  MpscNode* chain_head = cache.head;
  MpscNode* chain_tail = cache.head;
  for (std::uint32_t i = 1; i < kExchangeBatch; ++i) {
    chain_tail = chain_tail->next.load(std::memory_order_relaxed);
  }
  cache.head = chain_tail->next.load(std::memory_order_relaxed);
  cache.size -= kExchangeBatch;

  const std::scoped_lock lock(mutex_);
  chain_tail->next.store(shared_head_, std::memory_order_relaxed);
  shared_head_ = chain_head;
  shared_size_ += kExchangeBatch;
  ++donations_;
}

MessagePool::Stats MessagePool::stats() const {
  const std::scoped_lock lock(mutex_);
  Stats stats;
  stats.slabs = slabs_.size();
  stats.nodes = static_cast<std::uint64_t>(slabs_.size()) * kSlabNodes;
  stats.refills = refills_;
  stats.donations = donations_;
  return stats;
}

}  // namespace cnet::mp
