// MessagePool: slab-backed, thread-cached allocator for MpscNode mailbox
// entries — the reason a steady-state actor send never touches malloc.
//
// Shape (the firedancer idiom of preallocated frame pools, adapted to an
// unknown client-thread population):
//
//   * storage is allocated in slabs of kSlabNodes nodes, owned by the pool
//     and freed only by its destructor — nodes are never returned to the
//     system individually, so a node pointer is valid for the pool's whole
//     lifetime;
//   * each (thread, pool) pair gets a small private freelist cache;
//     acquire/release are plain pointer pushes/pops on it — no atomics, no
//     locks, no allocation;
//   * caches re-balance through a mutex-guarded shared freelist in batches
//     of kExchangeBatch nodes. The mp traffic pattern is asymmetric (client
//     threads allocate one node per count() and never free; workers free
//     depth+1 and allocate depth per operation), so clients refill from the
//     shared list and workers donate their surplus back — each thread takes
//     the lock once per kExchangeBatch operations, off the per-message path.
//
// Steady state is allocation-free: once the slab population covers the peak
// in-flight message count plus the cache working set, stats().slabs stops
// moving (asserted by tests/mp_mpsc_queue_test.cpp and the bench).
//
// Thread caches survive the pool they belong to (they live in TLS); each
// cache entry is keyed by (pool address, pool generation) where generations
// are process-unique, so an entry whose pool died — or whose address was
// reused by a younger pool — is detected and its dangling node pointers are
// dropped without being dereferenced.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "mp/mpsc_queue.h"

namespace cnet::mp {

class MessagePool {
 public:
  /// Nodes per slab allocation (the only malloc the pool ever does).
  static constexpr std::uint32_t kSlabNodes = 128;
  /// Nodes moved per shared-list exchange (refill or donation).
  static constexpr std::uint32_t kExchangeBatch = 64;
  /// A thread cache donates down to kCacheMax - kExchangeBatch once it
  /// grows past kCacheMax nodes.
  static constexpr std::uint32_t kCacheMax = 160;

  MessagePool();
  ~MessagePool();

  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;

  /// One mailbox node, freshly reusable. Lock-free and allocation-free
  /// except when the calling thread's cache is empty (then one mutex-guarded
  /// batch refill, and a slab allocation only if the shared list is dry).
  MpscNode* acquire();

  /// Returns a node to the calling thread's cache; donates a batch to the
  /// shared list when the cache overflows.
  void release(MpscNode* node);

  /// Allocation counters for the steady-state tests and bench: once warm,
  /// `slabs`/`nodes` must stop growing while `refills`/`donations` keep
  /// pace with traffic.
  struct Stats {
    std::uint64_t slabs = 0;      ///< slab mallocs (kSlabNodes nodes each)
    std::uint64_t nodes = 0;      ///< total nodes ever created
    std::uint64_t refills = 0;    ///< batch takes from the shared list
    std::uint64_t donations = 0;  ///< batch gives to the shared list
  };
  Stats stats() const;

 private:
  struct Cache;  // the TLS entry type, private to the .cpp

  /// This thread's cache slots (fixed-size array; see kCacheSlots in the
  /// .cpp). A static member so the thread_local can name the private type.
  static Cache* tls_slots();

  Cache& cache_for_this_thread();
  void refill(Cache& cache);
  void donate(Cache& cache);

  const std::uint64_t generation_;  ///< process-unique pool identity

  mutable std::mutex mutex_;
  MpscNode* shared_head_ = nullptr;  ///< freelist chained through node->next
  std::uint64_t shared_size_ = 0;
  std::vector<std::unique_ptr<MpscNode[]>> slabs_;
  std::uint64_t refills_ = 0;
  std::uint64_t donations_ = 0;
};

}  // namespace cnet::mp
