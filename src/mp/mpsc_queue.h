// Lock-free queues for the actor runtime's fast path.
//
// MpscQueue is Vyukov's intrusive multi-producer/single-consumer queue: a
// producer is one wait-free exchange plus one release store, the consumer
// advances a private cursor and never issues an RMW. Nodes come from a
// MessagePool freelist (mp/message_pool.h), so a steady-state send touches
// no allocator and no lock. One queue is one actor's mailbox; the single
// consumer is whichever worker currently holds the actor's SCHEDULED state
// (actors are serialized, so there is never more than one).
//
// MpmcRing is Vyukov's bounded MPMC array queue, used for the per-worker
// run-queue shards: any thread may push a runnable actor id, the owning
// worker pops from its own shard first and steals from the others when idle.
//
// Memory-ordering note: push() publishes through a seq_cst exchange and the
// deschedule check (maybe_nonempty) reads head_ with seq_cst. Together with
// the seq_cst actor-state transitions in ActorRuntime this forms the classic
// store/load (Dekker) handshake: either a producer observes the consumer's
// IDLE store and schedules the actor, or the consumer's post-IDLE emptiness
// check observes the producer's push and reclaims it. Either way a pushed
// message cannot strand in a descheduled mailbox.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "mp/message.h"
#include "util/assert.h"
#include "util/cacheline.h"

namespace cnet::mp {

/// One mailbox entry. `next` doubles as the freelist link while the node is
/// pooled; the node's storage is owned by its MessagePool slab.
struct MpscNode {
  std::atomic<MpscNode*> next{nullptr};
  Message msg{};
};

/// Vyukov intrusive MPSC queue. push() from any thread; pop() and
/// maybe_nonempty() from the single current consumer only.
class MpscQueue {
 public:
  MpscQueue() : head_(&stub_), tail_(&stub_) {}

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// What one pop attempt observed. kRetry means a producer has exchanged
  /// head_ but not yet linked its node (the transient mid-push window):
  /// the queue is non-empty but the next node is not reachable yet.
  /// Callers should back off and retry — or requeue the actor — rather
  /// than treat it as empty.
  enum class Pop : std::uint8_t { kItem, kEmpty, kRetry };

  /// Multi-producer enqueue: wait-free (one exchange, one store).
  void push(MpscNode* node) noexcept {
    node->next.store(nullptr, std::memory_order_relaxed);
    MpscNode* prev = head_.exchange(node, std::memory_order_seq_cst);
    prev->next.store(node, std::memory_order_release);
  }

  /// Single-consumer dequeue. On kItem, *out is the data-carrying node; the
  /// caller copies out->msg and returns the node to its pool.
  Pop pop(MpscNode** out) noexcept {
    MpscNode* tail = tail_.load(std::memory_order_relaxed);
    MpscNode* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) {
        return head_.load(std::memory_order_acquire) == &stub_ ? Pop::kEmpty : Pop::kRetry;
      }
      tail_.store(next, std::memory_order_relaxed);
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_.store(next, std::memory_order_relaxed);
      *out = tail;
      return Pop::kItem;
    }
    // tail is the last linked node. If a producer is past its exchange the
    // queue is longer than it looks; let the caller come back.
    if (tail != head_.load(std::memory_order_acquire)) return Pop::kRetry;
    // Single-element case: cycle the stub behind it so tail can be freed.
    push(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_.store(next, std::memory_order_relaxed);
      *out = tail;
      return Pop::kItem;
    }
    return Pop::kRetry;  // raced with another producer's pending link
  }

  /// Consumer-side emptiness hint for the deschedule handshake: false is
  /// authoritative only after the consumer has stored IDLE (see the header
  /// comment); true may be transiently stale in the other direction.
  /// A *previous* consumer may also run this concurrently with the current
  /// one's pop() — its claim to the actor is already lost, so a stale tail_
  /// only yields a conservative true and a failed reclaim CAS; tail_ is
  /// atomic (relaxed) precisely so that overlap is defined behaviour.
  bool maybe_nonempty() const noexcept {
    return tail_.load(std::memory_order_relaxed) != &stub_ ||
           head_.load(std::memory_order_seq_cst) != &stub_;
  }

 private:
  std::atomic<MpscNode*> head_;  ///< most recently pushed (producers)
  /// Oldest unconsumed node. Written only by the current consumer; the
  /// seq_cst SCHEDULED handoff in ActorRuntime orders one consumer's stores
  /// before the next one's loads, so relaxed accesses suffice.
  alignas(kCacheLine) std::atomic<MpscNode*> tail_;
  MpscNode stub_;
};

/// Vyukov bounded MPMC array queue of actor ids: the run-queue shard. Every
/// slot carries a sequence number; push/pop are one CAS each on the shared
/// cursor plus uncontended loads/stores on the slot. Sized so that the
/// runtime's "each actor is enqueued at most once" invariant makes push
/// failure impossible (capacity >= actor count).
class MpmcRing {
 public:
  MpmcRing() = default;

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;
  MpmcRing(MpmcRing&&) = delete;
  MpmcRing& operator=(MpmcRing&&) = delete;

  /// Sizes the ring; not thread-safe, call before any push/pop. `capacity`
  /// is rounded up to a power of two >= 2.
  void init(std::uint32_t capacity) {
    std::uint32_t cap = 2;
    while (cap < capacity) cap *= 2;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::uint32_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  std::uint32_t capacity() const noexcept { return mask_ + 1; }

  /// False iff the ring is full.
  bool push(std::uint32_t value) noexcept {
    CNET_CHECK(cells_ != nullptr);
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.value = value;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full (or a lapped slot whose pop is still in flight)
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// False iff the ring is empty.
  bool pop(std::uint32_t* out) noexcept {
    std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          *out = cell.value;
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty (or the matching push has not published yet)
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    std::uint32_t value = 0;
  };

  std::unique_ptr<Cell[]> cells_;
  std::uint32_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> dequeue_pos_{0};
};

}  // namespace cnet::mp
