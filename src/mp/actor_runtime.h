// A small actor runtime: serialized-per-actor message processing on a
// worker-thread pool. This is the substrate for the message-passing
// execution of balancing networks (mp::NetworkService) — the paper's model
// explicitly covers "both message passing and shared memory implementations"
// (§2), and in the message-passing reading every balancer is a process that
// reacts to token messages.
//
// Scheduling: each actor owns a mailbox; delivering to an idle actor puts it
// on the global run queue; workers pop actors and drain a bounded batch of
// messages, re-queueing the actor if messages remain. An actor is never
// executed by two workers at once, so handlers need no internal locking.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace cnet::mp {

using ActorId = std::uint32_t;

/// An opaque message: a 64-bit payload plus a context pointer. Network
/// tokens carry their response cell through `context`.
struct Message {
  std::uint64_t payload = 0;
  void* context = nullptr;
};

class ActorRuntime {
 public:
  using Handler = std::function<void(ActorId self, const Message&)>;

  /// Spawns `workers` threads. Actors must all be added before run() —
  /// see add_actor.
  explicit ActorRuntime(std::uint32_t workers);

  /// Drains and joins. All expected replies must have been received by the
  /// caller before destruction (no new sends may race the shutdown).
  ~ActorRuntime();

  ActorRuntime(const ActorRuntime&) = delete;
  ActorRuntime& operator=(const ActorRuntime&) = delete;

  /// Registers an actor; returns its id. Not thread-safe; call during setup
  /// (before any send).
  ActorId add_actor(Handler handler);

  /// Starts the workers. Call once after all actors are registered.
  void start();

  /// Delivers a message; callable from any thread and from handlers.
  void send(ActorId to, const Message& message);

  /// Optional mailbox-depth probe (borrowed; may be null). When set before
  /// start() and the library is built with CNET_OBS=1, every send() records
  /// the receiving actor's post-enqueue mailbox depth, giving the queueing
  /// distribution across all actors (see docs/OBSERVABILITY.md).
  void observe_queue_depth(obs::LogHistogram* histogram) { queue_depth_ = histogram; }

  /// Messages handled so far, totalled over all actors (relaxed counter).
  std::uint64_t messages_processed() const;

 private:
  struct Actor {
    Handler handler;
    std::mutex mutex;
    std::deque<Message> mailbox;
    bool scheduled = false;  // guarded by mutex
  };

  static constexpr int kBatch = 16;

  void worker_loop();
  void enqueue_runnable(ActorId id);
  bool dequeue_runnable(ActorId& id);

  std::vector<std::unique_ptr<Actor>> actors_;
  std::uint32_t worker_count_;
  obs::LogHistogram* queue_depth_ = nullptr;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<ActorId> run_queue_;
  bool stopping_ = false;

  std::atomic<std::uint64_t> processed_{0};
  std::vector<std::jthread> workers_;
};

}  // namespace cnet::mp
