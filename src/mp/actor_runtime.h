// A small actor runtime: serialized-per-actor message processing on a
// worker-thread pool. This is the substrate for the message-passing
// execution of balancing networks (mp::NetworkService) — the paper's model
// explicitly covers "both message passing and shared memory implementations"
// (§2), and in the message-passing reading every balancer is a process that
// reacts to token messages.
//
// Two interchangeable engines share the public API and the scheduling
// contract (an actor is never executed by two workers at once, so handlers
// need no internal locking; workers drain a bounded batch per turn):
//
//   * kLockFree (default): Vyukov intrusive MPSC mailboxes with nodes from
//     a freelist-backed MessagePool (zero allocation at steady state),
//     per-worker MPMC run-queue shards with work stealing, and a
//     futex-style std::atomic wait/notify idle protocol. A send is one
//     pooled-node exchange plus one run-queue CAS; a wake syscall happens
//     only when a worker is actually sleeping. A send from a non-worker
//     thread that claims an idle actor additionally *donates the sending
//     thread*: it runs the actor's turn inline (bounded by a recursion
//     budget) instead of paying a run-queue round trip plus a context
//     switch per hop — the scheduling invariant is untouched because the
//     inline turn holds the same SCHEDULED claim a worker would.
//   * kLocked: the original mutex+condvar engine — a global run queue and a
//     std::mutex + std::deque per mailbox — kept as the behavioural oracle,
//     the same way rt keeps the graph walk behind its compiled plan (PR 1).
//
// Scheduling invariant (both engines): each actor carries a scheduled flag
// (IDLE/SCHEDULED). Delivering to an idle actor claims the flag and puts the
// actor on a run queue; the draining worker releases the flag only after an
// authoritative empty check, and re-claims it if a message raced in. An
// actor is therefore on at most one run queue, exactly when its mailbox may
// be non-empty.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mp/message.h"
#include "mp/message_pool.h"
#include "mp/mpsc_queue.h"
#include "obs/metrics.h"

namespace cnet::mp {

/// Which hot-path implementation an ActorRuntime (and the NetworkService on
/// top of it) runs. The spec grammar exposes this as `engine=lockfree|locked`
/// on the mp family (docs/HARNESS.md).
enum class Engine : std::uint8_t {
  kLocked,    ///< mutex+condvar oracle (the seed implementation)
  kLockFree,  ///< MPSC mailboxes + sharded run queues + atomic wait
};

class ActorRuntime {
 public:
  using Handler = std::function<void(ActorId self, const Message&)>;

  struct Options {
    std::uint32_t workers = 2;          ///< threads draining the run queues
    Engine engine = Engine::kLockFree;  ///< hot-path implementation

    /// Cooperative park point, polled by each worker after it dequeues an
    /// actor and before it runs the turn (both engines). Returning non-zero
    /// makes the worker busy-pause that many nanoseconds — the fault
    /// layer's SIGSTOP-free stand-in for a worker preempted right after
    /// winning an actor: the SCHEDULED claim is held across the pause
    /// (legal — the flag means "owned", senders keep enqueueing) but no
    /// lock is, so the pause delays that actor's turn without blocking
    /// anything else. Null (the default) costs a bool test per turn.
    std::function<std::uint64_t(std::uint32_t worker)> park_point{};
  };

  /// Spawns nothing yet; workers start in start(). Actors must all be added
  /// before run() — see add_actor.
  explicit ActorRuntime(Options options);

  /// Convenience: `workers` threads on the default engine.
  explicit ActorRuntime(std::uint32_t workers) : ActorRuntime(Options{workers, {}, {}}) {}

  /// Drains and joins. All expected replies must have been received by the
  /// caller before destruction (no new sends may race the shutdown).
  ~ActorRuntime();

  ActorRuntime(const ActorRuntime&) = delete;
  ActorRuntime& operator=(const ActorRuntime&) = delete;

  /// Registers an actor; returns its id. Not thread-safe; call during setup
  /// (before any send).
  ActorId add_actor(Handler handler);

  /// Starts the workers. Call once after all actors are registered.
  void start();

  /// Delivers a message; callable from any thread and from handlers.
  void send(ActorId to, const Message& message);

  /// send() without the thread-donation fast path: under the lock-free
  /// engine the claimed actor always goes through the run queues, even from
  /// a client thread. Deadline-bounded operations need this for their
  /// initial hop — an inline send would run the token's whole walk on the
  /// waiting thread's own stack, making the deadline unenforceable (a
  /// thread cannot time out work it is itself executing). Identical to
  /// send() on the locked engine, which never donates.
  void send_queued(ActorId to, const Message& message);

  /// Optional mailbox-depth probe (borrowed; may be null). When set before
  /// start() and the library is built with CNET_OBS=1, every send() records
  /// the receiving actor's post-enqueue mailbox depth, giving the queueing
  /// distribution across all actors (see docs/OBSERVABILITY.md). Under the
  /// lock-free engine the depth is an approximate sharded counter — one
  /// relaxed per-actor cell bumped at enqueue and decremented at drain —
  /// rather than an exact under-lock size.
  void observe_queue_depth(obs::LogHistogram* histogram) { queue_depth_ = histogram; }

  /// Messages handled so far, totalled over all actors (relaxed counters,
  /// per-worker-sharded under the lock-free engine).
  std::uint64_t messages_processed() const;

  Engine engine() const { return options_.engine; }

  /// Mailbox-node pool counters (zeros under the locked engine, which does
  /// not pool). The steady-state tests pin `slabs` between two snapshots.
  MessagePool::Stats pool_stats() const;

 private:
  // --- locked engine (oracle) ------------------------------------------
  struct LockedActor {
    std::mutex mutex;
    std::deque<Message> mailbox;
    bool scheduled = false;  // guarded by mutex
  };

  void locked_send(ActorId to, const Message& message);
  void locked_worker_loop(std::uint32_t wid);
  void locked_enqueue(ActorId id);
  bool locked_dequeue(ActorId& id);

  // --- lock-free engine -------------------------------------------------
  /// Values of LfActor::state. kScheduled covers queued-or-running: the
  /// holder of the transition into it owns the actor's run-queue entry.
  static constexpr std::uint32_t kIdle = 0;
  static constexpr std::uint32_t kScheduled = 1;

  struct alignas(kCacheLine) LfActor {
    MpscQueue mailbox;
    std::atomic<std::uint32_t> state{kIdle};
    /// Approximate mailbox depth; maintained only while the depth probe is
    /// attached (otherwise never written, so the line stays clean).
    std::atomic<std::uint32_t> depth{0};
  };

  /// Sharded message counter, one cache line each: slots [0, workers) are
  /// per-worker, slots [workers, workers + kClientStatShards) are shared by
  /// inline-executing client threads (hashed by thread), bumped once per
  /// actor turn with a relaxed fetch_add.
  struct alignas(kCacheLine) WorkerStat {
    std::atomic<std::uint64_t> processed{0};
  };

  void lf_send(ActorId to, const Message& message, bool allow_inline);
  void lf_worker_loop(std::uint32_t wid);
  void lf_enqueue(ActorId id);
  bool lf_try_all_shards(std::uint32_t wid, ActorId* out);
  bool lf_next_runnable(std::uint32_t wid, ActorId* out);
  /// Runs one actor turn under the SCHEDULED claim; `stat_slot` indexes
  /// worker_stats_ (a worker's own slot or a client shard).
  void lf_run_actor(std::uint32_t stat_slot, ActorId id);
  std::uint32_t lf_client_stat_slot() const;

  static constexpr int kBatch = 16;
  /// Stat shards for inline-executing client threads (see WorkerStat).
  static constexpr std::uint32_t kClientStatShards = 8;
  /// Inline sends nest one frame per mailbox hop; past this depth the send
  /// falls back to the run queues (a worker picks the actor up).
  static constexpr int kInlineDepthMax = 64;

  Options options_;
  std::vector<Handler> handlers_;
  obs::LogHistogram* queue_depth_ = nullptr;

  // Locked-engine state.
  std::vector<std::unique_ptr<LockedActor>> locked_actors_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<ActorId> run_queue_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> processed_{0};

  // Lock-free-engine state.
  std::vector<std::unique_ptr<LfActor>> lf_actors_;
  MessagePool pool_;
  std::unique_ptr<MpmcRing[]> shards_;  ///< one run-queue shard per worker
  std::unique_ptr<WorkerStat[]> worker_stats_;  ///< workers + client shards
  std::atomic<std::uint32_t> work_epoch_{0};  ///< bumped to wake sleepers
  std::atomic<std::uint32_t> sleepers_{0};    ///< workers parked on work_epoch_
  std::atomic<bool> lf_stopping_{false};

  std::vector<std::jthread> workers_;
};

}  // namespace cnet::mp
