// Message-passing execution of a balancing network: every balancer and every
// output counter is an actor; a counting operation is a token message that
// hops from actor to actor and finally delivers its value back to the
// waiting client.
//
// This realizes the message-passing half of the paper's §2 model on real
// threads: balancer transitions are serialized per actor (instantaneous
// w.r.t. each other), and link traversal times are whatever the scheduler
// makes them — which is exactly the c1/c2 variability the paper studies.
// The paper's per-node delay W is injectable per token (count_delayed):
// the hosting worker busy-waits W ns after each balancer transition before
// forwarding, the message-passing analogue of rt's next_hooked() hook.
//
// The hot path rides the ActorRuntime engine the options select: the
// lock-free default (pooled MPSC mailboxes, sharded run queues, futex
// response cells) or the locked oracle (mutex+condvar throughout). Both
// use pooled, thread-cached response cells — count() allocates nothing.
//
// Observability: point Options::metrics at an obs::MpMetrics to record the
// per-actor message breakdown, mailbox-depth distribution, and client
// count() latency (docs/OBSERVABILITY.md documents every metric).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "mp/actor_runtime.h"
#include "mp/message_pool.h"
#include "topo/network.h"

namespace cnet::obs {
struct MpMetrics;  // obs/backend_metrics.h
}

namespace cnet::mp {

/// Message-passing execution of one topo::Network: balancer node i is actor
/// i, output counter p is actor node_count + p (the actor-index convention
/// obs::MpMetrics::actor_messages follows).
class NetworkService {
 public:
  struct Options {
    /// Worker threads draining the actor run queues.
    std::uint32_t workers = 2;

    /// Runtime hot path: the lock-free fast path (default) or the original
    /// mutex+condvar oracle (`engine=locked` in the spec grammar).
    Engine engine = Engine::kLockFree;

    /// Observability sink (borrowed; may be null — the default — for zero
    /// instrumentation cost; ignored in CNET_OBS=0 builds).
    obs::MpMetrics* metrics = nullptr;
  };

  /// Takes a copy of the topology and starts the workers.
  explicit NetworkService(topo::Network net) : NetworkService(std::move(net), Options()) {}
  NetworkService(topo::Network net, Options options);

  /// Performs one counting operation through network input `input`;
  /// blocks until the token's value message arrives. Thread-safe.
  std::uint64_t count(std::uint32_t input) { return count_delayed(input, 0); }

  /// As count(), with the paper's W: the token's hosting worker busy-waits
  /// `wait_ns` after every balancer transition before forwarding. 0 is the
  /// plain fast path.
  std::uint64_t count_delayed(std::uint32_t input, std::uint64_t wait_ns);

  /// The topology this service executes (the construction-time copy).
  const topo::Network& network() const { return net_; }

  /// Messages handled by all actors so far (balancer hops + counter
  /// deliveries); see obs::MpMetrics for the per-actor breakdown.
  std::uint64_t messages_processed() const { return runtime_.messages_processed(); }

  Engine engine() const { return runtime_.engine(); }

  /// Mailbox-node pool counters (zeros on the locked engine); the
  /// steady-state allocation tests pin `slabs` between snapshots.
  MessagePool::Stats pool_stats() const { return runtime_.pool_stats(); }

 private:
  topo::Network net_;
  obs::MpMetrics* metrics_ = nullptr;  ///< null unless CNET_OBS wiring is live
  ActorRuntime runtime_;
  std::vector<ActorId> node_actors_;     ///< per balancer node
  std::vector<ActorId> counter_actors_;  ///< per network output

  // Actor-local state, touched only by the owning actor's handler.
  std::vector<std::uint64_t> node_counts_;
  std::vector<std::uint64_t> output_counts_;
};

}  // namespace cnet::mp
