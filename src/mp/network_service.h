// Message-passing execution of a balancing network: every balancer and every
// output counter is an actor; a counting operation is a token message that
// hops from actor to actor and finally delivers its value back to the
// waiting client.
//
// This realizes the message-passing half of the paper's §2 model on real
// threads: balancer transitions are serialized per actor (instantaneous
// w.r.t. each other), and link traversal times are whatever the scheduler
// makes them — which is exactly the c1/c2 variability the paper studies.
// The paper's per-node delay W is injectable per token (count_delayed):
// the hosting worker busy-waits W ns after each balancer transition before
// forwarding, the message-passing analogue of rt's next_hooked() hook.
//
// Fault injection (Options::fault, see fault/injector.h): token stalls are
// extra busy time after a balancer transition, delivery delays are extra
// busy time before the forward — per-sender FIFO is a mailbox invariant, so
// a delay reorders a message only against *other* senders' traffic, which
// is the reordering the asynchronous model permits — and worker pauses ride
// the ActorRuntime park points. All of it widens the c1/c2 spread the paper
// studies without breaking any scheduling invariant.
//
// Deadlines: count_until() bounds the client's wait. On timeout the client
// abandons its ResponseCell (the cancel CAS in mp/response_cell.h decides
// value-vs-cancel races); the token, however, is already in the network and
// WILL increment an output counter — dropping its value would leave a hole
// in the counted range. The late completer therefore parks the orphaned
// value in the service's ticket buffer, and later operations recycle parked
// values before issuing new tokens. Recycling preserves the counting
// property (every value 0..n-1 handed out exactly once); a recycled value
// may be arbitrarily stale, so operations that return one carry no
// linearizability claim — the run harness measures exactly that.
//
// Quiescence: drain() waits (bounded) for in-flight tokens to reach their
// counter; the destructor drains unconditionally because actor-local state
// and the actor-id tables are destroyed before the runtime joins its
// workers, so a straggler token surviving into teardown would be a
// use-after-free, not a leak.
//
// The hot path rides the ActorRuntime engine the options select: the
// lock-free default (pooled MPSC mailboxes, sharded run queues, futex
// response cells) or the locked oracle (mutex+condvar throughout). Both
// use pooled, thread-cached response cells — count() allocates nothing.
//
// Observability: point Options::metrics at an obs::MpMetrics to record the
// per-actor message breakdown, mailbox-depth distribution, and client
// count() latency (docs/OBSERVABILITY.md documents every metric).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "mp/actor_runtime.h"
#include "mp/message_pool.h"
#include "topo/network.h"

namespace cnet::obs {
struct MpMetrics;  // obs/backend_metrics.h
}
namespace cnet::fault {
class Injector;  // fault/injector.h
}
namespace cnet::sched {
class Recorder;  // sched/trace.h
}

namespace cnet::mp {

class ResponseCell;  // mp/response_cell.h

/// Message-passing execution of one topo::Network: balancer node i is actor
/// i, output counter p is actor node_count + p (the actor-index convention
/// obs::MpMetrics::actor_messages follows).
class NetworkService {
 public:
  struct Options {
    /// Worker threads draining the actor run queues.
    std::uint32_t workers = 2;

    /// Runtime hot path: the lock-free fast path (default) or the original
    /// mutex+condvar oracle (`engine=locked` in the spec grammar).
    Engine engine = Engine::kLockFree;

    /// Observability sink (borrowed; may be null — the default — for zero
    /// instrumentation cost; ignored in CNET_OBS=0 builds).
    obs::MpMetrics* metrics = nullptr;

    /// Fault injector (borrowed; must outlive the service; may be null).
    /// Realizes the plan's stalls, delivery delays, and worker pauses —
    /// see the file comment. Client deaths are an issuer-side decision and
    /// live in the run harness.
    fault::Injector* fault = nullptr;
  };

  /// Outcome of a deadline-bounded counting operation.
  struct TimedCount {
    bool ok = false;          ///< value obtained before the deadline
    std::uint64_t value = 0;  ///< valid iff ok
  };

  /// Outcome of a quiescence drain.
  struct DrainReport {
    bool quiescent = false;        ///< in-flight tokens reached zero in time
    std::uint64_t strays = 0;      ///< tokens still in flight at the deadline
    std::uint64_t waited_ns = 0;   ///< wall time spent draining
  };

  /// Robustness counters (relaxed; exact in quiescence).
  struct RobustnessStats {
    std::uint64_t in_flight = 0;          ///< tokens currently in the network
    std::uint64_t deadline_timeouts = 0;  ///< count_until calls that gave up
    std::uint64_t values_parked = 0;      ///< orphaned values ever parked
    std::uint64_t values_reclaimed = 0;   ///< parked values recycled to clients
    std::uint64_t parked_now = 0;         ///< tickets currently in the buffer
  };

  /// Takes a copy of the topology and starts the workers.
  explicit NetworkService(topo::Network net) : NetworkService(std::move(net), Options()) {}
  NetworkService(topo::Network net, Options options);

  /// Drains in-flight tokens (see the file comment), then joins the workers.
  ~NetworkService();

  /// Performs one counting operation through network input `input`;
  /// blocks until the token's value message arrives. Thread-safe.
  std::uint64_t count(std::uint32_t input) { return count_delayed(input, 0); }

  /// As count(), with the paper's W: the token's hosting worker busy-waits
  /// `wait_ns` after every balancer transition before forwarding. 0 is the
  /// plain fast path.
  std::uint64_t count_delayed(std::uint32_t input, std::uint64_t wait_ns);

  /// Deadline-bounded count_delayed: gives up after `timeout_ns` (measured
  /// from the call). On timeout the operation returns {ok = false} and its
  /// token's eventual value is parked for recycling — see the file comment
  /// for the exact cancellation/recycling semantics.
  TimedCount count_until(std::uint32_t input, std::uint64_t wait_ns, std::uint64_t timeout_ns);

  /// Handle to one asynchronously issued counting operation (see
  /// count_begin). POD; pass it back to exactly one collect call.
  struct Pending {
    ResponseCell* cell = nullptr;  ///< null: `value` was satisfied from the
                                   ///< parked-ticket buffer, nothing in flight
    std::uint64_t value = 0;       ///< valid iff cell == nullptr
    std::uint32_t input = 0;       ///< entry port (metrics attribution)
    std::uint64_t start_ns = 0;    ///< issue timestamp (metrics; 0 = untimed)
  };

  /// Boundary-batching entry point: issues the token and returns without
  /// waiting, so a caller multiplexing many clients (the svc front-end) can
  /// put k tokens in flight with one burst of mailbox sends and only then
  /// start collecting. The send always goes through the run queues
  /// (send_queued) — an inline send would execute the whole walk on the
  /// issuing thread, serializing the burst and making a later deadline-bound
  /// collect unenforceable. Every Pending must be resolved by exactly one
  /// count_collect / count_collect_until before the service is destroyed.
  Pending count_begin(std::uint32_t input, std::uint64_t wait_ns);

  /// Blocks until the pending operation's value arrives and returns it.
  std::uint64_t count_collect(const Pending& pending);

  /// Deadline-bounded collect: gives up at `deadline` with the same
  /// cancellation/parking semantics as count_until (the slot-CAS race in
  /// mp/response_cell.h decides value-vs-cancel; an abandoned token's value
  /// is parked for recycling).
  TimedCount count_collect_until(const Pending& pending,
                                 std::chrono::steady_clock::time_point deadline);

  /// Waits (up to `deadline_ns`) for every in-flight token to reach its
  /// output counter. Quiescent means every issued value has been delivered
  /// or parked; parked tickets are NOT consumed (take_parked does that).
  DrainReport drain(std::uint64_t deadline_ns);

  /// Removes and returns every parked (orphaned) value. The run harness
  /// calls this after drain so abandoned operations' values can be
  /// accounted in the counting check instead of reading as holes.
  std::vector<std::uint64_t> take_parked();

  RobustnessStats robustness_stats() const;

  /// Attaches a schedule recorder (borrowed; null detaches). Every
  /// subsequent token reports its issue, per-node routing decisions, and
  /// committed value, keyed by its ResponseCell — unique while the token is
  /// in flight, which is all the recorder needs. Call only while quiescent
  /// (no tokens in flight): the workers read the pointer unsynchronized.
  /// Operations satisfied from the parked-ticket buffer perform no
  /// traversal and record nothing; see sched/trace.h for how the recorder
  /// attributes records to actors after the fact.
  void set_recorder(sched::Recorder* recorder) { recorder_ = recorder; }

  /// The topology this service executes (the construction-time copy).
  const topo::Network& network() const { return net_; }

  /// Messages handled by all actors so far (balancer hops + counter
  /// deliveries); see obs::MpMetrics for the per-actor breakdown.
  std::uint64_t messages_processed() const { return runtime_.messages_processed(); }

  Engine engine() const { return runtime_.engine(); }

  /// Mailbox-node pool counters (zeros on the locked engine); the
  /// steady-state allocation tests pin `slabs` between snapshots.
  MessagePool::Stats pool_stats() const { return runtime_.pool_stats(); }

 private:
  static ActorRuntime::Options runtime_options(const Options& options);

  bool try_pop_parked(std::uint64_t* value);
  void park_value(std::uint64_t value);

  topo::Network net_;
  obs::MpMetrics* metrics_ = nullptr;  ///< null unless CNET_OBS wiring is live
  fault::Injector* fault_ = nullptr;
  sched::Recorder* recorder_ = nullptr;  ///< borrowed; null = capture off

  // Declared before runtime_ so they outlive the workers; the counter-actor
  // handlers touch them on the abandonment path.
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> parked_total_{0};
  std::atomic<std::uint64_t> reclaimed_total_{0};
  std::atomic<std::uint64_t> parked_size_{0};  ///< lock-free "any tickets?" probe
  std::mutex parked_mutex_;
  std::vector<std::uint64_t> parked_;  ///< orphaned values awaiting recycling

  ActorRuntime runtime_;
  std::vector<ActorId> node_actors_;     ///< per balancer node
  std::vector<ActorId> counter_actors_;  ///< per network output

  // Actor-local state, touched only by the owning actor's handler.
  std::vector<std::uint64_t> node_counts_;
  std::vector<std::uint64_t> output_counts_;
};

}  // namespace cnet::mp
