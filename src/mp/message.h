// The actor runtime's message: a 64-bit payload plus a context pointer.
// Network tokens carry their response cell through `context` and the
// paper's per-node delay W (busy-wait nanoseconds, 0 for none) through
// `payload` — see mp::NetworkService.
//
// Split out of actor_runtime.h so the lock-free mailbox primitives
// (mp/mpsc_queue.h, mp/message_pool.h) can name the payload type without
// pulling in the runtime.
#pragma once

#include <cstdint>

namespace cnet::mp {

using ActorId = std::uint32_t;

struct Message {
  std::uint64_t payload = 0;
  void* context = nullptr;
};

}  // namespace cnet::mp
