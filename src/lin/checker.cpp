#include "lin/checker.h"

// IWYU: everything used directly, not via transitive includes of checker.h.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/assert.h"

namespace cnet::lin {

CheckResult check(const History& history) {
  CheckResult result;
  result.total_ops = history.size();
  if (history.empty()) return result;

  // Sweep events in time order. At equal times, starts are processed before
  // ends so that an op ending exactly when another starts counts as
  // overlapping (strict precedence only).
  struct Event {
    double time;
    bool is_end;  // false = start
    std::size_t op;
  };
  std::vector<Event> events;
  events.reserve(history.size() * 2);
  for (std::size_t i = 0; i < history.size(); ++i) {
    CNET_CHECK_MSG(history[i].start <= history[i].end, "operation ends before it starts");
    events.push_back({history[i].start, false, i});
    events.push_back({history[i].end, true, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.is_end != b.is_end) return !a.is_end;  // starts first
    return a.op < b.op;
  });

  std::uint64_t max_completed = 0;
  bool any_completed = false;
  for (const Event& ev : events) {
    const Operation& op = history[ev.op];
    if (ev.is_end) {
      if (!any_completed || op.value > max_completed) {
        max_completed = op.value;
        any_completed = true;
      }
    } else if (any_completed && max_completed > op.value) {
      ++result.nonlinearizable_ops;
      result.worst_inversion = std::max(result.worst_inversion, max_completed - op.value);
      result.violating_ops.push_back(ev.op);
    }
  }
  return result;
}

std::uint64_t inversion_magnitude(const History& history) {
  if (history.empty()) return 0;
  // Same sweep as check(), keeping only the running maximum: starts before
  // ends at equal times, so exact-touch counts as overlap, not precedence.
  struct Event {
    double time;
    bool is_end;  // false = start
    std::size_t op;
  };
  std::vector<Event> events;
  events.reserve(history.size() * 2);
  for (std::size_t i = 0; i < history.size(); ++i) {
    CNET_CHECK_MSG(history[i].start <= history[i].end, "operation ends before it starts");
    events.push_back({history[i].start, false, i});
    events.push_back({history[i].end, true, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.is_end != b.is_end) return !a.is_end;  // starts first
    return a.op < b.op;
  });

  std::uint64_t worst = 0;
  std::uint64_t max_completed = 0;
  bool any_completed = false;
  for (const Event& ev : events) {
    const Operation& op = history[ev.op];
    if (ev.is_end) {
      if (!any_completed || op.value > max_completed) {
        max_completed = op.value;
        any_completed = true;
      }
    } else if (any_completed && max_completed > op.value) {
      worst = std::max(worst, max_completed - op.value);
    }
  }
  return worst;
}

SeqConsistencyResult check_sequential_consistency(const History& history) {
  SeqConsistencyResult result;
  result.total_ops = history.size();
  // Order each actor's operations by start time (same-actor operations are
  // sequential, so start order is program order), then count descents.
  std::map<std::uint32_t, std::vector<const Operation*>> by_actor;
  for (const Operation& op : history) by_actor[op.actor].push_back(&op);
  for (auto& [actor, ops] : by_actor) {
    std::sort(ops.begin(), ops.end(),
              [](const Operation* a, const Operation* b) { return a->start < b->start; });
    for (std::size_t i = 1; i < ops.size(); ++i) {
      if (ops[i]->value < ops[i - 1]->value) ++result.program_order_violations;
    }
  }
  return result;
}

bool values_form_range(const History& history, std::string* message) {
  std::vector<std::uint64_t> values;
  values.reserve(history.size());
  for (const Operation& op : history) values.push_back(op.value);
  std::sort(values.begin(), values.end());
  for (std::uint64_t i = 0; i < values.size(); ++i) {
    if (values[i] != i) {
      if (message) {
        std::ostringstream msg;
        msg << "counting violated: rank " << i << " holds value " << values[i] << " ("
            << values.size() << " ops total)";
        *message = msg.str();
      }
      return false;
    }
  }
  return true;
}

WindowedChecker::WindowedChecker(double lag) : lag_(lag) { CNET_CHECK(lag >= 0.0); }

void WindowedChecker::add(const Operation& op) {
  CNET_CHECK_MSG(op.start <= op.end, "operation ends before it starts");
  if (!any_seen_ || op.end > max_end_seen_) max_end_seen_ = op.end;
  any_seen_ = true;
  ++total_;
  insert_record(op.end, op.value);
  pending_.push(op);
  // Everything starting at or before the watermark can be judged: under the
  // lag contract no future report can end before such a start.
  drain(max_end_seen_ - lag_);
  evict(max_end_seen_ - 2.0 * lag_);
}

void WindowedChecker::finish() {
  drain(max_end_seen_ + 1.0);
}

void WindowedChecker::drain(double start_cutoff) {
  while (!pending_.empty() && pending_.top().start <= start_cutoff) {
    judge(pending_.top());
    pending_.pop();
  }
}

void WindowedChecker::judge(const Operation& op) {
  // Max value among operations strictly ending before op.start.
  std::uint64_t best = floor_value_;
  bool have = has_floor_;
  auto it = records_.lower_bound(op.start);
  if (it != records_.begin()) {
    --it;
    if (!have || it->second > best) {
      best = it->second;
      have = true;
    }
  }
  if (have && best > op.value) ++violations_;
}

void WindowedChecker::insert_record(double end, std::uint64_t value) {
  // Maintain a strictly increasing staircase of (end -> max value).
  auto it = records_.upper_bound(end);
  if (it != records_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= value) return;  // dominated by an earlier record
    if (prev->first == end) {
      prev->second = value;
      it = std::next(prev);
      // fall through to erase dominated successors
    } else {
      it = std::next(records_.emplace_hint(it, end, value));
    }
  } else if (!has_floor_ || value > floor_value_) {
    it = std::next(records_.emplace_hint(it, end, value));
  } else {
    return;  // dominated by the floor
  }
  while (it != records_.end() && it->second <= value) it = records_.erase(it);
}

void WindowedChecker::evict(double end_cutoff) {
  auto it = records_.begin();
  while (it != records_.end() && it->first < end_cutoff) {
    floor_value_ = it->second;  // staircase is increasing, so last wins
    has_floor_ = true;
    it = records_.erase(it);
  }
}

}  // namespace cnet::lin
