// Operation histories for linearizability analysis.
//
// An Operation is one counting operation: it was invoked (entered the
// network) at `start`, responded (received its value from an output counter)
// at `end`. Times are real-valued; the event simulator uses virtual time, the
// multiprocessor simulator uses cycles, and the real-thread runtime uses
// nanoseconds — the checker only relies on their order.
#pragma once

#include <cstdint>
#include <vector>

namespace cnet::lin {

struct Operation {
  double start = 0.0;        ///< invocation (network entry) time
  double end = 0.0;          ///< response (counter value obtained) time
  std::uint64_t value = 0;   ///< the value the counting network returned
  std::uint32_t actor = 0;   ///< issuing token/processor/thread id (diagnostics)
};

using History = std::vector<Operation>;

}  // namespace cnet::lin
