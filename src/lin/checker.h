// Non-linearizability analysis per Definition 2.4 of the paper.
//
// An operation O is non-linearizable if some operation O' completely
// precedes O (O'.end < O.start) yet returned a *higher* counter value. The
// fraction of non-linearizable operations is the paper's headline metric
// (the y-axis of Figures 5 and 6).
//
// The offline checker runs in O(n log n): sweep operations by time,
// maintaining the maximum value among operations already completed; an
// operation is non-linearizable iff that running maximum at its start time
// exceeds its own value. Ties (O'.end == O.start) count as overlap, not
// precedence, matching the strict "completely precedes" of Def 2.3/2.4.
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "lin/history.h"

namespace cnet::lin {

struct CheckResult {
  std::uint64_t total_ops = 0;
  std::uint64_t nonlinearizable_ops = 0;
  /// Largest inversion observed: max over non-linearizable ops O of
  /// (max completed value before O.start) - O.value. 0 when linearizable.
  std::uint64_t worst_inversion = 0;
  /// Indices (into the input history) of the non-linearizable operations.
  std::vector<std::size_t> violating_ops;

  bool linearizable() const { return nonlinearizable_ops == 0; }
  double fraction() const {
    return total_ops == 0
               ? 0.0
               : static_cast<double>(nonlinearizable_ops) / static_cast<double>(total_ops);
  }
};

/// Full Def 2.4 analysis of a history (any order; the checker sorts).
///
/// Note that for this object class Def 2.4 decides *full* linearizability
/// [13], not just a necessary condition: a fetch-and-increment history with
/// unique values 0..n-1 is linearizable iff ordering operations by value is
/// consistent with real-time precedence, i.e. iff no operation is preceded
/// by a completed operation with a larger value — exactly what check()
/// counts. (The returned fraction is the paper's Def 2.4 measure; a
/// linearizable history is one with fraction 0.)
CheckResult check(const History& history);

/// The worst_inversion of check() without materializing the violation list:
/// the largest (max completed value before O.start) - O.value over the
/// history, 0 when linearizable. This is the adversarial schedule search's
/// objective (sched/search.h) — it scores thousands of candidate schedules,
/// so the per-op bookkeeping of the full analysis is deliberately skipped.
std::uint64_t inversion_magnitude(const History& history);

/// Sequential-consistency analysis, specialised to counting (cf. Lamport
/// [16], which the paper contrasts with linearizability): a counting history
/// whose values are a permutation of 0..n-1 is sequentially consistent iff
/// every actor's successive operations return increasing values — the total
/// order "by value" is then a witness consistent with every program order.
/// Returns the operations that break their actor's program order. Every such
/// violation is also a Def 2.4 violation (same-actor operations never
/// overlap), so this count is a lower bound on check().nonlinearizable_ops —
/// typically far lower: real-time order across actors is what counting
/// networks sacrifice first.
struct SeqConsistencyResult {
  std::uint64_t total_ops = 0;
  std::uint64_t program_order_violations = 0;
  bool sequentially_consistent() const { return program_order_violations == 0; }
  double fraction() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(program_order_violations) /
                                static_cast<double>(total_ops);
  }
};

SeqConsistencyResult check_sequential_consistency(const History& history);

/// True iff the multiset of returned values is exactly {0, 1, ..., n-1}:
/// the correctness condition of a counting network that completed n
/// operations from a fresh state. On failure, *message explains the first
/// discrepancy.
bool values_form_range(const History& history, std::string* message);

/// Incremental checker for long-running systems with bounded memory.
///
/// Assumption (documented contract): both the duration of any operation and
/// the out-of-orderness of completion reports are bounded by `lag` — i.e.,
/// every add() carries end >= max_end_seen - lag, and end - start <= lag for
/// every operation. Under that contract the incremental verdicts match the
/// offline checker exactly, with memory proportional to the number of
/// operations inside a 2*lag time window.
class WindowedChecker {
 public:
  explicit WindowedChecker(double lag);

  /// Report a completed operation.
  void add(const Operation& op);

  /// Analyse everything still pending (call once, at end of run).
  void finish();

  std::uint64_t total_ops() const { return total_; }
  std::uint64_t nonlinearizable_ops() const { return violations_; }
  double fraction() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(violations_) / static_cast<double>(total_);
  }

 private:
  void judge(const Operation& op);
  void insert_record(double end, std::uint64_t value);
  void drain(double start_cutoff);
  void evict(double end_cutoff);

  double lag_;
  double max_end_seen_ = 0.0;
  bool any_seen_ = false;

  /// Increasing staircase: end-time -> max value among ops ending <= it.
  std::map<double, std::uint64_t> records_;
  /// Largest value evicted from the staircase (floor for old queries).
  std::uint64_t floor_value_ = 0;
  bool has_floor_ = false;

  struct ByStart {
    bool operator()(const Operation& a, const Operation& b) const { return a.start > b.start; }
  };
  /// Ops whose start is too recent to be judged yet (some op ending before
  /// their start may still be unreported).
  std::priority_queue<Operation, std::vector<Operation>, ByStart> pending_;

  std::uint64_t total_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace cnet::lin
