// Process/workspace topology: which shared-memory objects exist, which
// *tiles* (processes) map them, and in what mode — declared up front,
// validated before anything boots, then materialized into shm::Workspaces.
//
// Naming note: this is NOT cnet::topo. `topo::Network` is the paper's
// balancing-network *wiring diagram* — balancers and wires, the math
// object. `cnet::deploy` is the *deployment* topology — workspaces,
// objects, and the processes that map them, in the style of firedancer's
// fd_topob builder. A deployment runs one topo::Network whose compiled
// state happens to live in one of these workspaces (docs/DEPLOY.md).
//
// The builder idiom mirrors fd_topob: declare workspaces, place objects in
// them with align/footprint discipline, declare tiles with their rt
// thread-id slices, then declare which objects each tile uses and how.
// finish() validates the whole graph (every object placed exactly once and
// mapped by at least one tile with exactly one writer unless marked
// multi-writer, footprints fit, thread slices pairwise disjoint — PR 7's
// slice discipline across processes) and computes each workspace's data
// footprint with the same bump-allocator arithmetic shm::Workspace will
// use, so "fits" here means "will not fail at alloc time" there.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "link/ring.h"
#include "shm/workspace.h"

namespace cnet::deploy {

/// How a tile maps an object. The mode is a declaration checked at
/// validation time (writer counting), not an mprotect — all tiles share
/// one PROT_READ|PROT_WRITE mapping of the workspace.
enum class MapMode : std::uint8_t {
  kReadOnly,
  kReadWrite,
};

const char* map_mode_name(MapMode mode);

struct WorkspaceSpec {
  std::string name;
  /// Filled by Builder::finish(): bytes of object data this workspace must
  /// hold, bump-allocator arithmetic included.
  std::uint64_t data_footprint = 0;
};

struct ObjectSpec {
  std::string name;
  std::string workspace;
  std::uint64_t align = 0;
  std::uint64_t footprint = 0;
  /// True for objects that are concurrently written by design (the rt plan
  /// state, control blocks): more than one kReadWrite mapper is then legal.
  /// False (default) enforces the single-writer discipline: exactly one
  /// tile maps the object kReadWrite (per-tile history slices).
  bool multi_writer = false;
};

struct TileUse {
  std::string object;
  MapMode mode = MapMode::kReadOnly;
};

/// Which side of a link a tile sits on.
enum class LinkDir : std::uint8_t {
  kIn,   ///< consumer: polls frags, publishes its consumed seq
  kOut,  ///< producer: publishes frags (exactly one per link)
};

/// One tile's attachment to a link (Builder::uses_link).
struct TileLinkUse {
  std::string tile;
  std::string link;
  LinkDir dir = LinkDir::kIn;
  /// Consumers only: a reliable consumer's credit line gates the producer
  /// (link::Ring flow control); an unreliable one can be overrun.
  bool reliable = true;
  /// Filled by finish(): this consumer's credit-line index (kIn declaration
  /// order). Unused for kOut.
  std::uint32_t consumer_index = 0;
};

/// A credit-based SPMC frag ring between tiles (link::Ring inside a
/// workspace). finish() synthesizes the backing object "link.<name>" and
/// the producer/consumer mappings, so footprint accounting and writer
/// validation ride the same path as plain objects.
struct LinkSpec {
  std::string name;
  std::string workspace;
  std::string producer;  ///< tile that must own the single kOut use
  std::uint32_t depth = 0;
  std::uint32_t burst = 0;
  std::uint32_t mtu = 0;
  std::vector<TileLinkUse> uses;  ///< filled by finish(), declaration order
  /// Ring geometry implied by the above (consumers/reliable_mask resolved
  /// from the kIn uses); what materialize() formats the object with.
  link::RingOptions ring_options() const;
  std::string object_name() const { return "link." + name; }
};

struct TileSpec {
  std::string name;
  /// This tile's rt thread-id slice: ids [thread_base, thread_base +
  /// thread_count). Slices must be pairwise disjoint across tiles — the
  /// cross-process version of the per-loop slices svc::Server hands out.
  std::uint32_t thread_base = 0;
  std::uint32_t thread_count = 0;
  std::vector<TileUse> uses;
};

/// The validated deployment graph. Build with Builder; read-only after.
struct Topology {
  std::vector<WorkspaceSpec> workspaces;
  std::vector<ObjectSpec> objects;
  std::vector<TileSpec> tiles;
  std::vector<LinkSpec> links;

  const ObjectSpec* find_object(const std::string& name) const;
  const TileSpec* find_tile(const std::string& name) const;
  const LinkSpec* find_link(const std::string& name) const;

  /// Multi-line rendering of workspaces/objects/tiles for logs and tests.
  std::string to_text() const;
};

/// fd_topob-style declarative builder. Methods record declarations and
/// return *this for chaining; all checking happens in finish() so a bad
/// topology yields one diagnostic instead of an abort mid-declaration.
class Builder {
 public:
  Builder& workspace(std::string name);
  /// Places `name` in workspace `wksp` (declaration order = placement
  /// order). `multi_writer` per ObjectSpec::multi_writer.
  Builder& object(std::string name, std::string wksp, std::uint64_t align,
                  std::uint64_t footprint, bool multi_writer = false);
  /// Declares a tile owning rt thread ids [thread_base, thread_base+count).
  Builder& tile(std::string name, std::uint32_t thread_base, std::uint32_t thread_count);
  /// Declares that the most recently declared tile maps `object` in `mode`.
  Builder& uses(std::string object, MapMode mode);
  /// Declares a credit-based SPMC link in workspace `wksp` whose single
  /// producer is tile `producer_tile`. Geometry per link::RingOptions:
  /// depth a power of two, burst the credit slack in [1, depth), mtu the
  /// max frag payload. Consumers attach with uses_link(..., kIn, ...).
  Builder& link(std::string name, std::string wksp, std::string producer_tile,
                std::uint32_t depth, std::uint32_t burst, std::uint32_t mtu = 256);
  /// Attaches `tile` to link `name`: kOut must come from the declared
  /// producer (exactly once); each kIn claims the next credit-line index.
  Builder& uses_link(std::string tile, std::string name, LinkDir dir, bool reliable = true);

  /// Validates the declarations and emits the topology. On failure returns
  /// false with a diagnostic that reports *every* validation failure (';'
  /// separated, declaration order) — one round trip fixes a broken graph,
  /// not one error per attempt.
  bool finish(Topology* out, std::string* error);

 private:
  Topology draft_;
  std::vector<TileLinkUse> link_uses_;
  bool saw_use_before_tile_ = false;
};

/// Creates every workspace (memfd-backed), places every object in
/// declaration order exactly as validated, and formats every link's ring
/// (link::Ring::create on its backing object) so tiles only ever attach.
/// On success `out` maps workspace name -> live Workspace whose fds the
/// supervisor passes to forked tiles.
bool materialize(const Topology& topo, std::map<std::string, shm::Workspace>* out,
                 std::string* error);

}  // namespace cnet::deploy
