// The end-to-end multi-process counter deployment: one workspace-resident
// compiled rt plan, N worker-tile processes counting through it, a
// supervisor that realizes the `die:` fault family as real SIGKILL and
// restarts the victim against the persistent workspace — and a merged
// cross-process history that still answers the paper's questions
// (values_form_range, the Def 2.2 step property, the Def 2.4 analysis).
//
// How state survives death: every tile records each completed operation
// into its own workspace-resident history slice and only then
// release-stores a per-(tile,thread) committed cursor — so a SIGKILL can
// lose at most the operations in flight (bounded by the batch size per
// thread), never expose a torn record, and a restarted tile resumes
// exactly where the cursor says. Values claimed from the shared plan by a
// killed thread but not yet recorded are permanently lost; the report
// accounts for every one of them against the plan's per-output counters
// and bounds them by kills x threads x batch. A run with kills therefore
// downgrades its guarantee to counting-only (lossy): unique values, exact
// loss accounting, true step property from the plan's own output counters
// — the honest claim, not a pretend-linearizable one.
#pragma once

#include <cstdint>
#include <string>

#include "lin/checker.h"
#include "lin/history.h"
#include "run/backend_spec.h"

namespace cnet::deploy {

struct DeployOptions {
  /// rt-family spec; must satisfy validate_deploy_spec. spec.ws names the
  /// workspace, spec.tiles (when set) the worker process count.
  run::BackendSpec spec;
  /// Worker processes; 0 = spec.tiles (which itself defaults to 2).
  std::uint32_t tiles = 0;
  std::uint32_t threads_per_tile = 2;
  std::uint64_t total_ops = 100000;
  /// Tokens per next_batch call — also the per-thread bound on values a
  /// SIGKILL can lose.
  std::uint32_t batch = 1;
  /// Restart budget: deaths beyond this (expected or not) fail the run.
  std::uint32_t max_restarts = 8;
  double timeout_s = 60.0;

  /// Pipelined run mode (run_pipeline_deployment): `tiles` ingress tiles
  /// batch token *requests* into credit-based shared-memory links, one
  /// counter tile drains them through the shared plan, one record tile
  /// commits histories. Requires threads_per_tile == 1 (each pipeline tile
  /// is a single stage loop). Also switched on by spec `pipeline=1`.
  bool pipeline = false;
  /// Transport ablation for the pipeline: kLink is the shm ring;
  /// kSocketPair reruns the same 3-stage topology over per-operation
  /// SOCK_SEQPACKET handoffs (clean runs only) so benchmarks can price the
  /// isolation tax with the transport as the only variable.
  enum class PipeTransport : std::uint8_t { kLink, kSocketPair };
  PipeTransport transport = PipeTransport::kLink;
  /// Link geometry (link::RingOptions::depth/burst) for pipeline mode.
  std::uint32_t link_depth = 128;
  std::uint32_t link_burst = 32;
};

struct DeployReport {
  bool ok = false;    ///< run completed and every applicable check passed
  std::string error;  ///< why the deployment failed (set iff the run died)

  /// The strongest claim the run supports. Kills forfeit linearizability:
  /// a killed thread's claimed-but-unrecorded values are gone, so the
  /// merged history is checked as a lossy counting run instead.
  enum class Guarantee : std::uint8_t { kLinearizable, kCountingOnlyLossy };
  Guarantee guarantee = Guarantee::kLinearizable;

  lin::History history;       ///< merged across tiles, times in ns
  lin::CheckResult analysis;  ///< Def 2.4 over the merged history

  bool counting_ok = false;  ///< range check (no kills) / loss-bounded uniqueness
  std::string counting_message;
  bool step_ok = false;  ///< Def 2.2 over the plan's per-output counts; for
                         ///< lossy runs, relaxed by the in-flight kill bound
                         ///< (tokens vaporized mid-network skew exits)

  std::uint64_t ops_recorded = 0;
  std::uint64_t issued = 0;       ///< tokens the shared plan handed out
  std::uint64_t lost_values = 0;  ///< claimed by a killed thread, never recorded
  std::uint64_t kills = 0;        ///< SIGKILLs the supervisor delivered
  std::uint64_t restarts = 0;     ///< respawns against the same workspace

  std::uint32_t tiles = 0;
  std::uint32_t threads_per_tile = 0;
  double makespan_ns = 0.0;
  double throughput_ops_s = 0.0;

  /// Pipeline-mode extras (zero/false on classic runs).
  bool pipelined = false;
  bool per_op_ablation = false;    ///< ran the socketpair transport, not links
  std::uint64_t dup_requests = 0;  ///< at-least-once replays dropped by record

  std::string to_text() const;
};

/// Whether `spec` can be deployed across processes: rt family on the
/// compiled plan with fetch-add balancers (MCS queue nodes live on caller
/// stacks and prism pairing camps on live peers — neither survives a
/// cross-process SIGKILL), a thread budget covering tiles x
/// threads_per_tile, and a fault plan that is empty or die-only (`die:n`
/// here means a real SIGKILL every n completed operations). Returns false
/// with a diagnostic otherwise.
bool validate_deploy_spec(const run::BackendSpec& spec, std::uint32_t tiles,
                          std::uint32_t threads_per_tile, std::string* error);

/// Builds the deploy topology (workspace, plan/control/history objects,
/// one tile per worker with a disjoint thread slice), materializes it,
/// boots the tiles, runs `total_ops` operations through the shared plan,
/// delivers and recovers from SIGKILLs per the spec's `die:` plan, merges
/// the per-tile histories, and checks the result. Must be called from a
/// single-threaded process (fork). Dispatches to run_pipeline_deployment
/// when options.pipeline or spec `pipeline=1` is set.
DeployReport run_counter_deployment(const DeployOptions& options);

/// The pipelined deployment: `tiles` ingress processes publish batched
/// token requests into credit-based shm links (link::Ring), one counter
/// process drains them through the workspace-resident plan, one record
/// process commits per-stream histories — requests stay in flight across
/// stages instead of paying a synchronous handoff per operation. Links are
/// reliable end to end; a `die:` SIGKILL can still vaporize in-flight
/// frags, which the report accounts against kills x 2 x batch (request +
/// response legs) and downgrades to counting-only exactly like the classic
/// runner. options.transport == kSocketPair swaps the shm links for per-op
/// SOCK_SEQPACKET handoffs (same topology, clean runs only) as the
/// benchmark ablation.
DeployReport run_pipeline_deployment(const DeployOptions& options);

}  // namespace cnet::deploy
