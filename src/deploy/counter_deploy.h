// The end-to-end multi-process counter deployment: one workspace-resident
// compiled rt plan, N worker-tile processes counting through it, a
// supervisor that realizes the `die:` fault family as real SIGKILL and
// restarts the victim against the persistent workspace — and a merged
// cross-process history that still answers the paper's questions
// (values_form_range, the Def 2.2 step property, the Def 2.4 analysis).
//
// How state survives death: every tile records each completed operation
// into its own workspace-resident history slice and only then
// release-stores a per-(tile,thread) committed cursor — so a SIGKILL can
// lose at most the operations in flight (bounded by the batch size per
// thread), never expose a torn record, and a restarted tile resumes
// exactly where the cursor says. Values claimed from the shared plan by a
// killed thread but not yet recorded are permanently lost; the report
// accounts for every one of them against the plan's per-output counters
// and bounds them by kills x threads x batch. A run with kills therefore
// downgrades its guarantee to counting-only (lossy): unique values, exact
// loss accounting, true step property from the plan's own output counters
// — the honest claim, not a pretend-linearizable one.
#pragma once

#include <cstdint>
#include <string>

#include "lin/checker.h"
#include "lin/history.h"
#include "run/backend_spec.h"

namespace cnet::deploy {

struct DeployOptions {
  /// rt-family spec; must satisfy validate_deploy_spec. spec.ws names the
  /// workspace, spec.tiles (when set) the worker process count.
  run::BackendSpec spec;
  /// Worker processes; 0 = spec.tiles (which itself defaults to 2).
  std::uint32_t tiles = 0;
  std::uint32_t threads_per_tile = 2;
  std::uint64_t total_ops = 100000;
  /// Tokens per next_batch call — also the per-thread bound on values a
  /// SIGKILL can lose.
  std::uint32_t batch = 1;
  /// Restart budget: deaths beyond this (expected or not) fail the run.
  std::uint32_t max_restarts = 8;
  double timeout_s = 60.0;
};

struct DeployReport {
  bool ok = false;    ///< run completed and every applicable check passed
  std::string error;  ///< why the deployment failed (set iff the run died)

  /// The strongest claim the run supports. Kills forfeit linearizability:
  /// a killed thread's claimed-but-unrecorded values are gone, so the
  /// merged history is checked as a lossy counting run instead.
  enum class Guarantee : std::uint8_t { kLinearizable, kCountingOnlyLossy };
  Guarantee guarantee = Guarantee::kLinearizable;

  lin::History history;       ///< merged across tiles, times in ns
  lin::CheckResult analysis;  ///< Def 2.4 over the merged history

  bool counting_ok = false;  ///< range check (no kills) / loss-bounded uniqueness
  std::string counting_message;
  bool step_ok = false;  ///< Def 2.2 over the plan's per-output counts; for
                         ///< lossy runs, relaxed by the in-flight kill bound
                         ///< (tokens vaporized mid-network skew exits)

  std::uint64_t ops_recorded = 0;
  std::uint64_t issued = 0;       ///< tokens the shared plan handed out
  std::uint64_t lost_values = 0;  ///< claimed by a killed thread, never recorded
  std::uint64_t kills = 0;        ///< SIGKILLs the supervisor delivered
  std::uint64_t restarts = 0;     ///< respawns against the same workspace

  std::uint32_t tiles = 0;
  std::uint32_t threads_per_tile = 0;
  double makespan_ns = 0.0;
  double throughput_ops_s = 0.0;

  std::string to_text() const;
};

/// Whether `spec` can be deployed across processes: rt family on the
/// compiled plan with fetch-add balancers (MCS queue nodes live on caller
/// stacks and prism pairing camps on live peers — neither survives a
/// cross-process SIGKILL), a thread budget covering tiles x
/// threads_per_tile, and a fault plan that is empty or die-only (`die:n`
/// here means a real SIGKILL every n completed operations). Returns false
/// with a diagnostic otherwise.
bool validate_deploy_spec(const run::BackendSpec& spec, std::uint32_t tiles,
                          std::uint32_t threads_per_tile, std::string* error);

/// Builds the deploy topology (workspace, plan/control/history objects,
/// one tile per worker with a disjoint thread slice), materializes it,
/// boots the tiles, runs `total_ops` operations through the shared plan,
/// delivers and recovers from SIGKILLs per the spec's `die:` plan, merges
/// the per-tile histories, and checks the result. Must be called from a
/// single-threaded process (fork).
DeployReport run_counter_deployment(const DeployOptions& options);

}  // namespace cnet::deploy
