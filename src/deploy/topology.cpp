#include "deploy/topology.h"

#include <algorithm>
#include <set>

namespace cnet::deploy {
namespace {

std::uint64_t align_up(std::uint64_t value, std::uint64_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

const char* map_mode_name(MapMode mode) {
  switch (mode) {
    case MapMode::kReadOnly: return "ro";
    case MapMode::kReadWrite: return "rw";
  }
  return "?";
}

link::RingOptions LinkSpec::ring_options() const {
  link::RingOptions o;
  o.depth = depth;
  o.burst = burst;
  o.mtu = mtu;
  o.consumers = 0;
  o.reliable_mask = 0;
  for (const TileLinkUse& use : uses) {
    if (use.dir != LinkDir::kIn) continue;
    if (use.reliable) o.reliable_mask |= 1u << use.consumer_index;
    ++o.consumers;
  }
  return o;
}

const ObjectSpec* Topology::find_object(const std::string& name) const {
  for (const ObjectSpec& obj : objects) {
    if (obj.name == name) return &obj;
  }
  return nullptr;
}

const TileSpec* Topology::find_tile(const std::string& name) const {
  for (const TileSpec& tile : tiles) {
    if (tile.name == name) return &tile;
  }
  return nullptr;
}

const LinkSpec* Topology::find_link(const std::string& name) const {
  for (const LinkSpec& link : links) {
    if (link.name == name) return &link;
  }
  return nullptr;
}

std::string Topology::to_text() const {
  std::string s;
  for (const WorkspaceSpec& ws : workspaces) {
    s += "workspace " + ws.name + " (" + std::to_string(ws.data_footprint) + " bytes)\n";
    for (const ObjectSpec& obj : objects) {
      if (obj.workspace != ws.name) continue;
      s += "  object " + obj.name + " align=" + std::to_string(obj.align) +
           " footprint=" + std::to_string(obj.footprint) +
           (obj.multi_writer ? " multi-writer" : "") + "\n";
    }
  }
  for (const LinkSpec& link : links) {
    s += "link " + link.name + " producer=" + link.producer +
         " depth=" + std::to_string(link.depth) + " burst=" + std::to_string(link.burst) +
         " mtu=" + std::to_string(link.mtu);
    for (const TileLinkUse& use : link.uses) {
      if (use.dir == LinkDir::kIn) {
        s += " " + use.tile + ":in" + (use.reliable ? "" : ":unreliable");
      }
    }
    s += "\n";
  }
  for (const TileSpec& tile : tiles) {
    s += "tile " + tile.name + " threads=[" + std::to_string(tile.thread_base) + "," +
         std::to_string(tile.thread_base + tile.thread_count) + ")";
    for (const TileUse& use : tile.uses) {
      s += " " + use.object + ":" + map_mode_name(use.mode);
    }
    s += "\n";
  }
  return s;
}

Builder& Builder::workspace(std::string name) {
  draft_.workspaces.push_back(WorkspaceSpec{std::move(name), 0});
  return *this;
}

Builder& Builder::object(std::string name, std::string wksp, std::uint64_t align,
                         std::uint64_t footprint, bool multi_writer) {
  draft_.objects.push_back(
      ObjectSpec{std::move(name), std::move(wksp), align, footprint, multi_writer});
  return *this;
}

Builder& Builder::tile(std::string name, std::uint32_t thread_base,
                       std::uint32_t thread_count) {
  draft_.tiles.push_back(TileSpec{std::move(name), thread_base, thread_count, {}});
  return *this;
}

Builder& Builder::uses(std::string object, MapMode mode) {
  if (draft_.tiles.empty()) {
    saw_use_before_tile_ = true;
    return *this;
  }
  draft_.tiles.back().uses.push_back(TileUse{std::move(object), mode});
  return *this;
}

Builder& Builder::link(std::string name, std::string wksp, std::string producer_tile,
                       std::uint32_t depth, std::uint32_t burst, std::uint32_t mtu) {
  LinkSpec spec;
  spec.name = std::move(name);
  spec.workspace = std::move(wksp);
  spec.producer = std::move(producer_tile);
  spec.depth = depth;
  spec.burst = burst;
  spec.mtu = mtu;
  draft_.links.push_back(std::move(spec));
  return *this;
}

Builder& Builder::uses_link(std::string tile, std::string name, LinkDir dir, bool reliable) {
  link_uses_.push_back(TileLinkUse{std::move(tile), std::move(name), dir, reliable, 0});
  return *this;
}

bool Builder::finish(Topology* out, std::string* error) {
  // Every failure is collected, none short-circuits: a broken graph comes
  // back with the full list so one edit-compile round fixes it. Checks
  // after a failed prerequisite still run — their maps just treat the
  // missing declaration as absent — so messages stay stable and specific.
  std::vector<std::string> errors;
  const auto bad = [&errors](std::string why) { errors.push_back(std::move(why)); };

  if (saw_use_before_tile_) bad("uses() before any tile()");

  // Links synthesize their backing object and tile mappings up front, so
  // all of the plain-object machinery below (placement accounting, writer
  // counting, reachability) validates them too.
  std::set<std::string> link_names;
  for (LinkSpec& link : draft_.links) {
    if (!link_names.insert(link.name).second) {
      bad("link '" + link.name + "' declared twice");
      continue;
    }
    std::uint32_t consumer_index = 0;
    bool producer_seen = false;
    for (const TileLinkUse& use : link_uses_) {
      if (use.link != link.name) continue;
      TileLinkUse resolved = use;
      if (use.dir == LinkDir::kOut) {
        if (use.tile != link.producer) {
          bad("link '" + link.name + "': tile '" + use.tile +
              "' declares itself producer but the link names '" + link.producer + "'");
          continue;
        }
        if (producer_seen) {
          bad("link '" + link.name + "' has more than one producer use");
          continue;
        }
        producer_seen = true;
      } else {
        resolved.consumer_index = consumer_index++;
      }
      link.uses.push_back(std::move(resolved));
    }
    if (!producer_seen) {
      bad("link '" + link.name + "': producer tile '" + link.producer +
          "' never declared uses_link(..., kOut)");
    }
    if (consumer_index == 0) bad("link '" + link.name + "' has no consumer");
    if (consumer_index > link::kMaxConsumers) {
      bad("link '" + link.name + "' has " + std::to_string(consumer_index) +
          " consumers (max " + std::to_string(link::kMaxConsumers) + ")");
    }
    std::string ring_error;
    const link::RingOptions ring = link.ring_options();
    if (ring.consumers != 0 && !link::Ring::validate(ring, &ring_error)) {
      bad("link '" + link.name + "': " + ring_error);
    }
    const std::uint64_t footprint = link::Ring::footprint(ring);
    draft_.objects.push_back(ObjectSpec{link.object_name(), link.workspace,
                                        link::Ring::align(),
                                        std::max<std::uint64_t>(footprint, 1),
                                        /*multi_writer=*/true});
    for (const TileLinkUse& use : link.uses) {
      for (TileSpec& tile : draft_.tiles) {
        // Producer and consumers alike write the ring (frags vs credit
        // lines) — every side maps it read-write.
        if (tile.name == use.tile) tile.uses.push_back({link.object_name(), MapMode::kReadWrite});
      }
    }
  }
  for (const TileLinkUse& use : link_uses_) {
    if (link_names.find(use.link) == link_names.end()) {
      bad("tile '" + use.tile + "' uses unknown link '" + use.link + "'");
    }
    bool tile_known = false;
    for (const TileSpec& tile : draft_.tiles) tile_known |= tile.name == use.tile;
    if (!tile_known) {
      bad("unknown tile '" + use.tile + "' uses link '" + use.link + "'");
    }
  }

  // Workspaces: unique names (shm::Workspace re-validates the charset).
  std::set<std::string> ws_names;
  for (const WorkspaceSpec& ws : draft_.workspaces) {
    if (!ws_names.insert(ws.name).second) {
      bad("workspace '" + ws.name + "' declared twice");
    }
  }

  // Objects: unique names, known workspace, shm-acceptable align/footprint,
  // and per-workspace bump-allocator accounting (placement order =
  // declaration order, the order materialize() allocs in).
  std::map<std::string, std::uint64_t> ws_cursor;
  std::map<std::string, std::uint32_t> ws_objects;
  std::set<std::string> obj_names;
  for (const ObjectSpec& obj : draft_.objects) {
    if (!obj_names.insert(obj.name).second) {
      bad("object '" + obj.name + "' placed twice");
    }
    if (ws_names.find(obj.workspace) == ws_names.end()) {
      bad("object '" + obj.name + "' names unknown workspace '" + obj.workspace + "'");
    }
    if (obj.align == 0 || (obj.align & (obj.align - 1)) != 0 ||
        obj.align > shm::kMaxObjectAlign) {
      bad("object '" + obj.name + "' align " + std::to_string(obj.align) +
          " must be a power of two <= " + std::to_string(shm::kMaxObjectAlign));
      continue;  // cursor arithmetic below assumes a sane align
    }
    if (obj.footprint == 0) {
      bad("object '" + obj.name + "' has zero footprint");
    }
    if (++ws_objects[obj.workspace] > shm::kMaxObjects) {
      bad("workspace '" + obj.workspace + "' exceeds " + std::to_string(shm::kMaxObjects) +
          " objects");
    }
    std::uint64_t& cursor = ws_cursor[obj.workspace];
    cursor = align_up(cursor, obj.align) + obj.footprint;
  }
  for (WorkspaceSpec& ws : draft_.workspaces) {
    ws.data_footprint = ws_cursor[ws.name];
    if (ws.data_footprint == 0) {
      bad("workspace '" + ws.name + "' holds no objects");
    }
  }

  // Tiles: unique names, non-empty pairwise-disjoint thread slices, and
  // well-formed uses lists.
  std::set<std::string> tile_names;
  std::map<std::string, std::uint32_t> writers;
  std::map<std::string, std::uint32_t> mappers;
  for (std::size_t i = 0; i < draft_.tiles.size(); ++i) {
    const TileSpec& tile = draft_.tiles[i];
    if (!tile_names.insert(tile.name).second) {
      bad("tile '" + tile.name + "' declared twice");
    }
    if (tile.thread_count == 0) {
      bad("tile '" + tile.name + "' has an empty thread slice");
    }
    for (std::size_t j = 0; j < i; ++j) {
      const TileSpec& other = draft_.tiles[j];
      const bool disjoint = tile.thread_base >= other.thread_base + other.thread_count ||
                            other.thread_base >= tile.thread_base + tile.thread_count;
      if (!disjoint) {
        bad("tiles '" + other.name + "' and '" + tile.name +
            "' have overlapping thread slices");
      }
    }
    std::set<std::string> seen;
    for (const TileUse& use : tile.uses) {
      if (obj_names.find(use.object) == obj_names.end()) {
        bad("tile '" + tile.name + "' uses unknown object '" + use.object + "'");
      }
      if (!seen.insert(use.object).second) {
        bad("tile '" + tile.name + "' uses object '" + use.object + "' twice");
      }
      ++mappers[use.object];
      if (use.mode == MapMode::kReadWrite) ++writers[use.object];
    }
  }

  // Mode consistency: every object reachable, every object written by
  // exactly one tile unless it opted into multi-writer.
  for (const ObjectSpec& obj : draft_.objects) {
    if (mappers[obj.name] == 0) {
      bad("object '" + obj.name + "' is mapped by no tile");
      continue;
    }
    const std::uint32_t w = writers[obj.name];
    if (w == 0) {
      bad("object '" + obj.name + "' has no read-write mapper");
    }
    if (w > 1 && !obj.multi_writer) {
      bad("object '" + obj.name + "' has " + std::to_string(w) +
          " writers but is not marked multi-writer");
    }
  }

  if (!errors.empty()) {
    if (error != nullptr) {
      std::string joined = "deploy topology: " + errors[0];
      for (std::size_t i = 1; i < errors.size(); ++i) joined += "; " + errors[i];
      *error = std::move(joined);
    }
    return false;
  }

  *out = std::move(draft_);
  draft_ = Topology{};
  link_uses_.clear();
  return true;
}

bool materialize(const Topology& topo, std::map<std::string, shm::Workspace>* out,
                 std::string* error) {
  out->clear();
  for (const WorkspaceSpec& ws : topo.workspaces) {
    shm::Workspace workspace;
    if (!shm::Workspace::create(ws.name, ws.data_footprint, &workspace, error)) return false;
    out->emplace(ws.name, std::move(workspace));
  }
  for (const ObjectSpec& obj : topo.objects) {
    shm::Workspace& ws = out->at(obj.workspace);
    if (ws.alloc(obj.name, obj.align, obj.footprint, error) == nullptr) return false;
  }
  for (const LinkSpec& link : topo.links) {
    shm::Workspace& ws = out->at(link.workspace);
    std::uint64_t footprint = 0;
    void* mem = ws.find(link.object_name(), &footprint);
    link::Ring ring;
    if (!link::Ring::create(mem, footprint, link.ring_options(), &ring, error)) {
      if (error != nullptr) *error = "link '" + link.name + "': " + *error;
      return false;
    }
  }
  return true;
}

}  // namespace cnet::deploy
