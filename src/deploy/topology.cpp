#include "deploy/topology.h"

#include <algorithm>
#include <set>

namespace cnet::deploy {
namespace {

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = "deploy topology: " + why;
  return false;
}

std::uint64_t align_up(std::uint64_t value, std::uint64_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

const char* map_mode_name(MapMode mode) {
  switch (mode) {
    case MapMode::kReadOnly: return "ro";
    case MapMode::kReadWrite: return "rw";
  }
  return "?";
}

const ObjectSpec* Topology::find_object(const std::string& name) const {
  for (const ObjectSpec& obj : objects) {
    if (obj.name == name) return &obj;
  }
  return nullptr;
}

const TileSpec* Topology::find_tile(const std::string& name) const {
  for (const TileSpec& tile : tiles) {
    if (tile.name == name) return &tile;
  }
  return nullptr;
}

std::string Topology::to_text() const {
  std::string s;
  for (const WorkspaceSpec& ws : workspaces) {
    s += "workspace " + ws.name + " (" + std::to_string(ws.data_footprint) + " bytes)\n";
    for (const ObjectSpec& obj : objects) {
      if (obj.workspace != ws.name) continue;
      s += "  object " + obj.name + " align=" + std::to_string(obj.align) +
           " footprint=" + std::to_string(obj.footprint) +
           (obj.multi_writer ? " multi-writer" : "") + "\n";
    }
  }
  for (const TileSpec& tile : tiles) {
    s += "tile " + tile.name + " threads=[" + std::to_string(tile.thread_base) + "," +
         std::to_string(tile.thread_base + tile.thread_count) + ")";
    for (const TileUse& use : tile.uses) {
      s += " " + use.object + ":" + map_mode_name(use.mode);
    }
    s += "\n";
  }
  return s;
}

Builder& Builder::workspace(std::string name) {
  draft_.workspaces.push_back(WorkspaceSpec{std::move(name), 0});
  return *this;
}

Builder& Builder::object(std::string name, std::string wksp, std::uint64_t align,
                         std::uint64_t footprint, bool multi_writer) {
  draft_.objects.push_back(
      ObjectSpec{std::move(name), std::move(wksp), align, footprint, multi_writer});
  return *this;
}

Builder& Builder::tile(std::string name, std::uint32_t thread_base,
                       std::uint32_t thread_count) {
  draft_.tiles.push_back(TileSpec{std::move(name), thread_base, thread_count, {}});
  return *this;
}

Builder& Builder::uses(std::string object, MapMode mode) {
  if (draft_.tiles.empty()) {
    saw_use_before_tile_ = true;
    return *this;
  }
  draft_.tiles.back().uses.push_back(TileUse{std::move(object), mode});
  return *this;
}

bool Builder::finish(Topology* out, std::string* error) {
  if (saw_use_before_tile_) return fail(error, "uses() before any tile()");

  // Workspaces: unique names (shm::Workspace re-validates the charset).
  std::set<std::string> ws_names;
  for (const WorkspaceSpec& ws : draft_.workspaces) {
    if (!ws_names.insert(ws.name).second) {
      return fail(error, "workspace '" + ws.name + "' declared twice");
    }
  }

  // Objects: unique names, known workspace, shm-acceptable align/footprint,
  // and per-workspace bump-allocator accounting (placement order =
  // declaration order, the order materialize() allocs in).
  std::map<std::string, std::uint64_t> ws_cursor;
  std::map<std::string, std::uint32_t> ws_objects;
  std::set<std::string> obj_names;
  for (const ObjectSpec& obj : draft_.objects) {
    if (!obj_names.insert(obj.name).second) {
      return fail(error, "object '" + obj.name + "' placed twice");
    }
    if (ws_names.find(obj.workspace) == ws_names.end()) {
      return fail(error,
                  "object '" + obj.name + "' names unknown workspace '" + obj.workspace + "'");
    }
    if (obj.align == 0 || (obj.align & (obj.align - 1)) != 0 ||
        obj.align > shm::kMaxObjectAlign) {
      return fail(error, "object '" + obj.name + "' align " + std::to_string(obj.align) +
                             " must be a power of two <= " +
                             std::to_string(shm::kMaxObjectAlign));
    }
    if (obj.footprint == 0) {
      return fail(error, "object '" + obj.name + "' has zero footprint");
    }
    if (++ws_objects[obj.workspace] > shm::kMaxObjects) {
      return fail(error, "workspace '" + obj.workspace + "' exceeds " +
                             std::to_string(shm::kMaxObjects) + " objects");
    }
    std::uint64_t& cursor = ws_cursor[obj.workspace];
    cursor = align_up(cursor, obj.align) + obj.footprint;
  }
  for (WorkspaceSpec& ws : draft_.workspaces) {
    ws.data_footprint = ws_cursor[ws.name];
    if (ws.data_footprint == 0) {
      return fail(error, "workspace '" + ws.name + "' holds no objects");
    }
  }

  // Tiles: unique names, non-empty pairwise-disjoint thread slices, and
  // well-formed uses lists.
  std::set<std::string> tile_names;
  std::map<std::string, std::uint32_t> writers;
  std::map<std::string, std::uint32_t> mappers;
  for (std::size_t i = 0; i < draft_.tiles.size(); ++i) {
    const TileSpec& tile = draft_.tiles[i];
    if (!tile_names.insert(tile.name).second) {
      return fail(error, "tile '" + tile.name + "' declared twice");
    }
    if (tile.thread_count == 0) {
      return fail(error, "tile '" + tile.name + "' has an empty thread slice");
    }
    for (std::size_t j = 0; j < i; ++j) {
      const TileSpec& other = draft_.tiles[j];
      const bool disjoint = tile.thread_base >= other.thread_base + other.thread_count ||
                            other.thread_base >= tile.thread_base + tile.thread_count;
      if (!disjoint) {
        return fail(error, "tiles '" + other.name + "' and '" + tile.name +
                               "' have overlapping thread slices");
      }
    }
    std::set<std::string> seen;
    for (const TileUse& use : tile.uses) {
      if (obj_names.find(use.object) == obj_names.end()) {
        return fail(error,
                    "tile '" + tile.name + "' uses unknown object '" + use.object + "'");
      }
      if (!seen.insert(use.object).second) {
        return fail(error,
                    "tile '" + tile.name + "' uses object '" + use.object + "' twice");
      }
      ++mappers[use.object];
      if (use.mode == MapMode::kReadWrite) ++writers[use.object];
    }
  }

  // Mode consistency: every object reachable, every object written by
  // exactly one tile unless it opted into multi-writer.
  for (const ObjectSpec& obj : draft_.objects) {
    if (mappers[obj.name] == 0) {
      return fail(error, "object '" + obj.name + "' is mapped by no tile");
    }
    const std::uint32_t w = writers[obj.name];
    if (w == 0) {
      return fail(error, "object '" + obj.name + "' has no read-write mapper");
    }
    if (w > 1 && !obj.multi_writer) {
      return fail(error, "object '" + obj.name + "' has " + std::to_string(w) +
                             " writers but is not marked multi-writer");
    }
  }

  *out = std::move(draft_);
  draft_ = Topology{};
  return true;
}

bool materialize(const Topology& topo, std::map<std::string, shm::Workspace>* out,
                 std::string* error) {
  out->clear();
  for (const WorkspaceSpec& ws : topo.workspaces) {
    shm::Workspace workspace;
    if (!shm::Workspace::create(ws.name, ws.data_footprint, &workspace, error)) return false;
    out->emplace(ws.name, std::move(workspace));
  }
  for (const ObjectSpec& obj : topo.objects) {
    shm::Workspace& ws = out->at(obj.workspace);
    if (ws.alloc(obj.name, obj.align, obj.footprint, error) == nullptr) return false;
  }
  return true;
}

}  // namespace cnet::deploy
