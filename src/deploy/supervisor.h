// Fork-based tile supervisor: boots worker processes, reaps their deaths,
// kills them on demand, and re-forks them against the same (persistent)
// workspace fds — the mechanism half of process-level fault tolerance.
// Policy (when to kill, when a death is fatal, when to restart) lives with
// the caller (deploy/counter_deploy.cpp).
//
// Children are fork-without-exec: the tile entry point runs in the child
// and the child leaves via _exit, so parent-side atexit handlers and
// static destructors never run twice. Workspace fds and MAP_SHARED
// mappings are inherited by fork, which is exactly how tiles reach the
// shared state; restarted tiles re-attach from the inherited fd and
// resolve objects by name (shm/workspace.h).
//
// Fork safety: spawn() must be called from a single-threaded process (the
// supervisor process is the deploy driver, not a tile) — the child calls
// non-async-signal-safe things (mmap, pthread_create) that are only safe
// when no other parent thread could hold runtime locks at fork time.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cnet::deploy {

class Supervisor {
 public:
  /// Runs in the forked child; its return value becomes the child's exit
  /// status. Must not return control to the caller's stack — the
  /// supervisor _exits with the returned status as soon as it returns.
  using TileMain = std::function<int(std::uint32_t tile_index)>;

  Supervisor(std::uint32_t tile_count, TileMain main);
  /// Kills (SIGKILL) and reaps anything still running.
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Forks tile `tile`; false (with diagnostic) if it is already running
  /// or fork() itself failed.
  bool spawn(std::uint32_t tile, std::string* error);

  bool alive(std::uint32_t tile) const;
  std::uint32_t alive_count() const;
  pid_t pid(std::uint32_t tile) const;
  /// Total successful spawn() calls (first boots + restarts).
  std::uint64_t total_spawns() const { return spawns_; }

  /// One reaped child.
  struct Death {
    std::uint32_t tile = 0;
    bool signaled = false;  ///< killed by a signal (vs. exited)
    int code = 0;           ///< signal number or exit status
  };

  /// Reaps every already-dead child without blocking.
  std::vector<Death> poll();

  /// SIGKILLs a running tile. The corpse surfaces via poll() like any
  /// other death; the caller decides whether it was expected.
  bool kill_tile(std::uint32_t tile);

 private:
  std::vector<pid_t> pids_;  ///< -1 = not running
  TileMain main_;
  std::uint64_t spawns_ = 0;
};

}  // namespace cnet::deploy
