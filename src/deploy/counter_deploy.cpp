#include "deploy/counter_deploy.h"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <map>
#include <new>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "deploy/deploy_internal.h"
#include "deploy/supervisor.h"
#include "deploy/topology.h"
#include "rt/routing_plan.h"
#include "run/workload.h"
#include "shm/workspace.h"
#include "topo/validate.h"

namespace cnet::deploy {
namespace {

using detail::ControlBlock;
using detail::OpRecord;
using detail::StreamCursor;
using detail::counter_options;
using detail::hist_name;
using detail::kBoot;
using detail::kCtlObj;
using detail::kCursorObj;
using detail::kDone;
using detail::kMaxTiles;
using detail::kNoHold;
using detail::kPlanObj;
using detail::kReady;
using detail::now_ns;

/// Blocks while the globally committed count sits at/past the supervisor's
/// kill watermark — someone is owed a SIGKILL before anyone proceeds. The
/// sleep matters on small machines: a spinning worker could starve the
/// supervisor off the core that must deliver the kill. Returns false when
/// the run is stopping.
bool wait_for_hold(ControlBlock* ctl, const StreamCursor* cursors,
                   std::uint32_t total_threads) {
  while (true) {
    const std::uint64_t hold = ctl->hold.load(std::memory_order_acquire);
    if (hold == kNoHold) return true;
    std::uint64_t committed = 0;
    for (std::uint32_t i = 0; i < total_threads; ++i) {
      committed += cursors[i].committed.load(std::memory_order_acquire);
    }
    if (committed < hold) return true;
    if (ctl->stop.load(std::memory_order_acquire) != 0) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

/// Per-thread worker loop inside a tile: resume from the committed cursor,
/// batch tokens through the shared plan, record-then-commit each value.
void tile_thread(rt::RoutingPlan& plan, ControlBlock* ctl, StreamCursor* cursors,
                 std::uint32_t total_threads, OpRecord* slice, std::uint64_t quota,
                 std::uint32_t gid, std::uint32_t batch) {
  StreamCursor& cursor = cursors[gid];
  const std::uint32_t input = gid % plan.input_width();
  std::vector<std::uint64_t> values(batch);
  std::uint64_t k = cursor.committed.load(std::memory_order_acquire);
  while (k < quota) {
    if (ctl->stop.load(std::memory_order_acquire) != 0) return;
    if (!wait_for_hold(ctl, cursors, total_threads)) return;
    const auto span = static_cast<std::size_t>(std::min<std::uint64_t>(batch, quota - k));
    const std::uint64_t start = now_ns();
    plan.next_batch(gid, input, std::span<std::uint64_t>(values.data(), span));
    const std::uint64_t end = now_ns();
    for (std::size_t j = 0; j < span; ++j) {
      OpRecord& rec = slice[k + j];
      rec.start_ns = start;
      rec.end_ns = end;
      rec.value = values[j];
      rec.actor = gid;
      cursor.committed.store(k + j + 1, std::memory_order_release);
    }
    k += span;
  }
}

/// The forked tile body: re-attach the workspace from the inherited fd,
/// resolve every object by name, adopt the shared plan state, and count.
/// Exit codes: 0 done, 10 attach failed, 11 an object is missing.
int tile_main(const DeployOptions& options, std::uint32_t tiles, std::uint32_t tile,
              int ws_fd) {
  shm::Workspace ws;
  std::string error;
  if (!shm::Workspace::attach(ws_fd, &ws, &error)) return 10;
  std::uint64_t plan_footprint = 0;
  void* plan_base = ws.find(kPlanObj, &plan_footprint);
  auto* ctl = static_cast<ControlBlock*>(ws.find(kCtlObj));
  auto* cursors = static_cast<StreamCursor*>(ws.find(kCursorObj));
  auto* hist = static_cast<OpRecord*>(ws.find(hist_name(tile)));
  if (plan_base == nullptr || ctl == nullptr || cursors == nullptr || hist == nullptr) {
    return 11;
  }

  const topo::Network net = options.spec.build_network();
  rt::RoutingPlan plan(net, counter_options(options.spec),
                       rt::PlanArena{plan_base, plan_footprint, /*attach=*/true});

  ctl->tiles[tile].state.store(kReady, std::memory_order_release);
  while (ctl->go.load(std::memory_order_acquire) == 0) {
    if (ctl->stop.load(std::memory_order_acquire) != 0) return 0;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  const std::uint32_t T = options.threads_per_tile;
  const std::vector<std::uint64_t> tile_quota = run::issuer_quotas(options.total_ops, tiles);
  const std::vector<std::uint64_t> thread_quota = run::issuer_quotas(tile_quota[tile], T);
  std::vector<std::thread> threads;
  threads.reserve(T);
  std::uint64_t slice_base = 0;
  for (std::uint32_t t = 0; t < T; ++t) {
    const std::uint32_t gid = tile * T + t;
    OpRecord* slice = hist + slice_base;
    threads.emplace_back(tile_thread, std::ref(plan), ctl, cursors, tiles * T, slice,
                         thread_quota[t], gid, options.batch);
    slice_base += thread_quota[t];
  }
  for (std::thread& th : threads) th.join();

  ctl->tiles[tile].state.store(kDone, std::memory_order_release);
  return 0;
}

DeployReport failed(DeployReport report, const std::string& why) {
  report.ok = false;
  report.error = why;
  return report;
}

}  // namespace

bool validate_deploy_spec(const run::BackendSpec& spec, std::uint32_t tiles,
                          std::uint32_t threads_per_tile, std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = "deploy: " + why;
    return false;
  };
  if (spec.family != run::Family::kRt) {
    return fail("only the rt family deploys across processes (got " +
                std::string(run::family_name(spec.family)) + ")");
  }
  if (spec.engine_walk) {
    return fail("engine=walk has no relocatable plan state; use the compiled plan");
  }
  if (spec.mcs) {
    return fail("mcs balancers cannot cross processes (MCS queue nodes live on caller "
                "stacks, which are process-private)");
  }
  if (spec.diffraction) {
    return fail("diffraction cannot cross processes (prism pairing camps on live peers; "
                "a SIGKILLed partner would poison slots)");
  }
  if (tiles == 0 || tiles > kMaxTiles) {
    return fail("tiles must be in [1, " + std::to_string(kMaxTiles) + "] (got " +
                std::to_string(tiles) + ")");
  }
  if (threads_per_tile == 0) return fail("threads_per_tile must be >= 1");
  const std::uint64_t total = std::uint64_t{tiles} * threads_per_tile;
  if (total > spec.max_threads) {
    return fail("tiles x threads_per_tile = " + std::to_string(total) +
                " exceeds the spec's thread bound " + std::to_string(spec.max_threads) +
                " (raise threads=)");
  }
  if (spec.fault.has_stalls() || spec.fault.has_pauses() || spec.fault.has_delays()) {
    return fail("only the die: fault clause deploys (it becomes a real SIGKILL); "
                "stall/pause/delay are in-process mechanisms");
  }
  return true;
}

DeployReport run_counter_deployment(const DeployOptions& options) {
  if (options.pipeline || options.spec.pipeline) return run_pipeline_deployment(options);
  DeployReport report;
  const std::uint32_t tiles = options.tiles != 0          ? options.tiles
                              : options.spec.tiles != 0   ? options.spec.tiles
                                                          : 2;
  const std::uint32_t T = options.threads_per_tile;
  report.tiles = tiles;
  report.threads_per_tile = T;

  std::string error;
  if (!validate_deploy_spec(options.spec, tiles, T, &error)) return failed(report, error);
  if (options.batch == 0) return failed(report, "deploy: batch must be >= 1");
  if (options.total_ops < std::uint64_t{tiles} * T) {
    return failed(report, "deploy: total_ops must cover at least one op per thread");
  }

  const topo::Network net = options.spec.build_network();
  const rt::CounterOptions copts = counter_options(options.spec);
  const std::size_t plan_footprint = rt::RoutingPlan::state_footprint(net, copts);
  const std::vector<std::uint64_t> tile_quota = run::issuer_quotas(options.total_ops, tiles);
  const std::uint32_t total_threads = tiles * T;
  const std::string ws_name = options.spec.ws.empty() ? "cnet-deploy" : options.spec.ws;

  // Declare and validate the deployment before anything boots.
  Builder builder;
  builder.workspace(ws_name);
  builder.object(kPlanObj, ws_name, rt::RoutingPlan::state_align(),
                 std::max<std::uint64_t>(plan_footprint, 1), /*multi_writer=*/true);
  builder.object(kCtlObj, ws_name, alignof(ControlBlock), sizeof(ControlBlock),
                 /*multi_writer=*/true);
  builder.object(kCursorObj, ws_name, alignof(StreamCursor),
                 std::uint64_t{total_threads} * sizeof(StreamCursor), /*multi_writer=*/true);
  for (std::uint32_t i = 0; i < tiles; ++i) {
    builder.object(hist_name(i), ws_name, alignof(OpRecord),
                   std::max<std::uint64_t>(tile_quota[i], 1) * sizeof(OpRecord));
  }
  for (std::uint32_t i = 0; i < tiles; ++i) {
    builder.tile("worker" + std::to_string(i), i * T, T)
        .uses(kPlanObj, MapMode::kReadWrite)
        .uses(kCtlObj, MapMode::kReadWrite)
        .uses(kCursorObj, MapMode::kReadWrite)
        .uses(hist_name(i), MapMode::kReadWrite);
  }
  Topology topology;
  if (!builder.finish(&topology, &error)) return failed(report, error);
  std::map<std::string, shm::Workspace> workspaces;
  if (!materialize(topology, &workspaces, &error)) return failed(report, error);
  shm::Workspace& ws = workspaces.at(ws_name);

  // Construct the shared state once, supervisor-side; tiles only attach.
  std::uint64_t found_footprint = 0;
  void* plan_base = ws.find(kPlanObj, &found_footprint);
  rt::RoutingPlan plan(net, copts, rt::PlanArena{plan_base, found_footprint, false});
  auto* ctl = new (ws.find(kCtlObj)) ControlBlock();
  auto* cursors = static_cast<StreamCursor*>(ws.find(kCursorObj));
  for (std::uint32_t i = 0; i < total_threads; ++i) new (&cursors[i]) StreamCursor();

  const int ws_fd = ws.fd();
  const DeployOptions child_options = options;  // copied into every fork
  Supervisor supervisor(tiles, [child_options, tiles, ws_fd](std::uint32_t tile) {
    return tile_main(child_options, tiles, tile, ws_fd);
  });

  const auto fatal = [&](const std::string& why) {
    ctl->stop.store(1, std::memory_order_release);
    return failed(std::move(report), why);
  };

  for (std::uint32_t i = 0; i < tiles; ++i) {
    if (!supervisor.spawn(i, &error)) return fatal(error);
  }

  const std::uint64_t deadline =
      now_ns() + static_cast<std::uint64_t>(options.timeout_s * 1e9);

  // Boot barrier: every tile attached and resolved its objects.
  for (std::uint32_t ready = 0; ready < tiles;) {
    ready = 0;
    for (std::uint32_t i = 0; i < tiles; ++i) {
      if (ctl->tiles[i].state.load(std::memory_order_acquire) != kBoot) ++ready;
    }
    if (ready == tiles) break;
    if (!supervisor.poll().empty()) return fatal("deploy: a tile died during boot");
    if (now_ns() > deadline) return fatal("deploy: boot timed out");
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // Arm the first kill watermark before releasing the tiles: workers hold
  // at `hold` committed ops until the SIGKILL owed there has landed, which
  // makes the die: schedule deterministic — a fast run cannot complete
  // inside one supervisor sampling window and skip its kills.
  const std::uint64_t die_every = options.spec.fault.die_every;
  std::uint64_t next_kill = die_every;
  const auto arm_hold = [&](std::uint64_t kills_so_far) {
    const bool armed = die_every != 0 && kills_so_far < options.max_restarts &&
                       next_kill < options.total_ops;
    ctl->hold.store(armed ? next_kill : kNoHold, std::memory_order_release);
  };
  arm_hold(0);
  ctl->go.store(1, std::memory_order_release);

  // Monitor: reap deaths, restart casualties against the persistent
  // workspace, and deliver the die: schedule as real SIGKILLs. Kills are
  // serialized and counted at the *reap*, not the delivery: a kill counts
  // only once its signaled death has been observed, so `kills` can never
  // outrun `restarts`, and a SIGKILL that raced a victim's clean exit
  // (delivered to an already-exiting process, dropped by the kernel)
  // evaporates and the same watermark simply selects another victim.
  std::uint64_t kills = 0, restarts = 0;
  std::uint32_t victim_rotor = 0;
  bool kill_pending = false;
  std::uint32_t pending_victim = 0;
  std::vector<bool> finished(tiles, false);
  while (true) {
    for (const Supervisor::Death& death : supervisor.poll()) {
      if (kill_pending && death.tile == pending_victim) {
        kill_pending = false;
        if (death.signaled) {
          ++kills;
          next_kill += die_every;
          arm_hold(kills);  // release the held workers toward the next mark
        }
        // else: the victim finished before the signal landed — the kill
        // evaporated; fall through to normal death handling either way.
      }
      if (!death.signaled && death.code == 0) {
        finished[death.tile] = true;
        continue;
      }
      // SIGKILL (ours) or a crash: both are process deaths the deployment
      // promises to survive — re-fork against the same workspace.
      if (restarts >= options.max_restarts) {
        return fatal("deploy: restart budget (" + std::to_string(options.max_restarts) +
                     ") exhausted; last death: tile " + std::to_string(death.tile) +
                     (death.signaled ? " signal " : " exit ") + std::to_string(death.code));
      }
      ++restarts;
      if (!supervisor.spawn(death.tile, &error)) return fatal(error);
    }
    if (std::all_of(finished.begin(), finished.end(), [](bool f) { return f; })) break;

    if (die_every != 0 && !kill_pending && kills < options.max_restarts) {
      std::uint64_t committed = 0;
      for (std::uint32_t i = 0; i < total_threads; ++i) {
        committed += cursors[i].committed.load(std::memory_order_acquire);
      }
      if (committed >= next_kill && committed < options.total_ops) {
        // Only a tile that still owes operations qualifies as a victim —
        // its unfinished threads are parked in wait_for_hold (or mid
        // batch), so short of a quota-boundary race the process cannot
        // exit cleanly before the signal lands.
        for (std::uint32_t tried = 0; tried < tiles; ++tried) {
          const std::uint32_t victim = victim_rotor++ % tiles;
          if (finished[victim] || !supervisor.alive(victim)) continue;
          std::uint64_t tile_committed = 0;
          for (std::uint32_t t = 0; t < T; ++t) {
            tile_committed +=
                cursors[victim * T + t].committed.load(std::memory_order_acquire);
          }
          if (tile_committed >= tile_quota[victim]) continue;  // may be exiting
          if (supervisor.kill_tile(victim)) {
            kill_pending = true;
            pending_victim = victim;
          }
          break;
        }
      }
    }
    if (now_ns() > deadline) return fatal("deploy: run timed out");
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }

  report.kills = kills;
  report.restarts = restarts;
  report.issued = plan.issued();

  // Merge the per-tile histories below each stream's committed watermark.
  for (std::uint32_t tile = 0; tile < tiles; ++tile) {
    const auto* hist = static_cast<const OpRecord*>(ws.find(hist_name(tile)));
    const std::vector<std::uint64_t> thread_quota = run::issuer_quotas(tile_quota[tile], T);
    std::uint64_t slice_base = 0;
    for (std::uint32_t t = 0; t < T; ++t) {
      const std::uint32_t gid = tile * T + t;
      const std::uint64_t committed = cursors[gid].committed.load(std::memory_order_acquire);
      for (std::uint64_t k = 0; k < committed; ++k) {
        const OpRecord& rec = hist[slice_base + k];
        lin::Operation op;
        op.start = static_cast<double>(rec.start_ns);
        op.end = static_cast<double>(rec.end_ns);
        op.value = rec.value;
        op.actor = rec.actor;
        report.history.push_back(op);
      }
      slice_base += thread_quota[t];
    }
  }
  report.ops_recorded = report.history.size();
  report.lost_values = report.issued - report.ops_recorded;

  double min_start = 0.0, max_end = 0.0;
  for (std::size_t i = 0; i < report.history.size(); ++i) {
    const lin::Operation& op = report.history[i];
    if (i == 0 || op.start < min_start) min_start = op.start;
    if (i == 0 || op.end > max_end) max_end = op.end;
  }
  report.makespan_ns = max_end - min_start;
  if (report.makespan_ns > 0) {
    report.throughput_ops_s =
        static_cast<double>(report.ops_recorded) / (report.makespan_ns * 1e-9);
  }

  // Checks. The step property comes from the plan's own per-output
  // counters — the ground truth even when a kill lost recorded values.
  const std::uint32_t w = net.output_width();
  std::vector<std::uint64_t> per_output(w);
  for (std::uint32_t p = 0; p < w; ++p) per_output[p] = plan.output_count(p);
  if (kills == 0) {
    report.step_ok = topo::has_step_property(per_output);
  } else {
    // A SIGKILL can vaporize tokens *inside* the network: balancers were
    // toggled but no output counter was ever claimed (such tokens never
    // show up in issued/lost accounting). Each one skews later exits by
    // at most one slot, so the honest claim for a lossy run is the step
    // property up to the in-flight bound — at most `batch` tokens per
    // killed thread — not Def 2.2 verbatim.
    const std::uint64_t step_slack = kills * T * options.batch;
    const auto [mn, mx] = std::minmax_element(per_output.begin(), per_output.end());
    report.step_ok = *mx - *mn <= 1 + step_slack;
  }
  report.analysis = lin::check(report.history);

  if (kills == 0) {
    report.guarantee = DeployReport::Guarantee::kLinearizable;
    report.counting_ok = lin::values_form_range(report.history, &report.counting_message);
    if (report.counting_ok && report.lost_values != 0) {
      report.counting_ok = false;
      report.counting_message = "plan issued " + std::to_string(report.issued) +
                                " tokens but only " + std::to_string(report.ops_recorded) +
                                " were recorded, with no kills to explain the gap";
    }
    if (report.counting_ok) report.counting_message = "values form an exact range";
  } else {
    // Lossy counting: every recorded value must be unique and genuinely
    // claimed from the plan, and the losses must be exactly the tokens a
    // kill could have orphaned (at most batch in flight per thread).
    report.guarantee = DeployReport::Guarantee::kCountingOnlyLossy;
    std::vector<std::uint64_t> values;
    values.reserve(report.history.size());
    for (const lin::Operation& op : report.history) values.push_back(op.value);
    std::sort(values.begin(), values.end());
    bool unique = std::adjacent_find(values.begin(), values.end()) == values.end();
    bool claimed = true;
    for (const std::uint64_t v : values) {
      const std::uint32_t port = static_cast<std::uint32_t>(v % w);
      if (v / w >= per_output[port]) {
        claimed = false;
        break;
      }
    }
    const std::uint64_t loss_bound = kills * T * options.batch;
    report.counting_ok = unique && claimed && report.lost_values <= loss_bound &&
                         report.ops_recorded == options.total_ops;
    if (report.counting_ok) {
      report.counting_message =
          "unique claimed values; " + std::to_string(report.lost_values) +
          " lost to kills (bound " + std::to_string(loss_bound) + ")";
    } else if (!unique) {
      report.counting_message = "duplicate value in the merged history";
    } else if (!claimed) {
      report.counting_message = "history holds a value the plan never issued";
    } else if (report.ops_recorded != options.total_ops) {
      report.counting_message = "recorded " + std::to_string(report.ops_recorded) + " of " +
                                std::to_string(options.total_ops) + " ops";
    } else {
      report.counting_message = std::to_string(report.lost_values) +
                                " values lost exceeds the kill bound " +
                                std::to_string(loss_bound);
    }
  }

  report.ok = report.counting_ok && report.step_ok;
  return report;
}

std::string DeployReport::to_text() const {
  std::string s;
  if (!error.empty()) {
    s += "deploy FAILED: " + error + "\n";
    return s;
  }
  s += "deploy: " + std::to_string(tiles) + " tiles x " + std::to_string(threads_per_tile) +
       " threads\n";
  if (pipelined) {
    s += "  pipeline:   ingress -> counter -> record over ";
    s += per_op_ablation ? "per-op socketpairs" : "shm links";
    s += "; " + std::to_string(dup_requests) + " dup requests dropped\n";
  }
  s += "  guarantee:  ";
  s += guarantee == Guarantee::kLinearizable ? "linearizable-candidate (no kills)"
                                             : "counting-only (lossy; kills occurred)";
  s += "\n";
  s += "  ops:        " + std::to_string(ops_recorded) + " recorded, " +
       std::to_string(issued) + " issued, " + std::to_string(lost_values) + " lost\n";
  s += "  faults:     " + std::to_string(kills) + " SIGKILLs, " + std::to_string(restarts) +
       " restarts\n";
  s += "  counting:   ";
  s += counting_ok ? "OK" : "FAIL";
  s += " (" + counting_message + ")\n";
  s += "  step:       ";
  s += step_ok ? (guarantee == Guarantee::kLinearizable ? "OK" : "OK (loss-relaxed)")
               : "FAIL";
  s += "\n";
  s += "  def2.4:     " + std::to_string(analysis.nonlinearizable_ops) + "/" +
       std::to_string(analysis.total_ops) +
       " non-linearizable (fraction " + std::to_string(analysis.fraction()) +
       ", worst inversion " + std::to_string(analysis.worst_inversion) + ")\n";
  s += "  makespan:   " + std::to_string(makespan_ns * 1e-6) + " ms, " +
       std::to_string(throughput_ops_s * 1e-6) + " Mops/s\n";
  s += ok ? "  verdict:    PASS\n" : "  verdict:    FAIL\n";
  return s;
}

}  // namespace cnet::deploy
