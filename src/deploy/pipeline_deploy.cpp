// The pipelined process-tile deployment (counter_deploy.h,
// run_pipeline_deployment): ingress tiles publish batched token *requests*
// into credit-based shm links (link::Ring), one counter tile drains them
// through the workspace-resident compiled plan, one record tile commits
// per-stream histories. Requests stay in flight across stages — the
// isolation tax is paid per *burst*, not per operation.
//
// Crash model (all state in the workspace, like counter_deploy):
//   - ingress i persists its published-request count in pipe.cursors and
//     bumps it only *after* the frag is in the ring: a kill between the
//     two republishes the same req_seq (at-least-once), which record
//     detects against its per-stream watermark and drops as a dup.
//   - the counter is stateless beyond its ring cursors, which live in the
//     rings themselves (consumed watermarks in credit lines, pub_seq via
//     resync_producer). A kill can orphan one drained batch (claimed from
//     the plan, never sent) and one replayed batch (dup dropped at
//     record) — hence the kills x 2 x batch loss bound.
//   - record writes a request's OpRecords, release-stores the stream's
//     committed cursor, bumps its request watermark, and only then
//     advances the ring: a kill anywhere in that sequence makes the
//     restart redo idempotent work (the frag is still in the ring —
//     record is a reliable consumer — and rewrites identical records).
//
// The kSocketPair transport reruns the same 3-stage fork topology with
// per-operation SOCK_SEQPACKET handoffs instead of links (clean runs
// only): same workspace, plan, and checking code, so benchmarks price the
// transport — batched shared-memory frags vs a kernel round trip per op —
// as the only variable.
#include "deploy/counter_deploy.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <new>
#include <span>
#include <thread>
#include <vector>

#include "deploy/deploy_internal.h"
#include "deploy/supervisor.h"
#include "deploy/topology.h"
#include "link/ring.h"
#include "rt/routing_plan.h"
#include "run/workload.h"
#include "shm/workspace.h"
#include "topo/validate.h"

namespace cnet::deploy {
namespace {

using detail::ControlBlock;
using detail::OpRecord;
using detail::counter_options;
using detail::kBoot;
using detail::kCtlObj;
using detail::kDone;
using detail::kMaxTiles;
using detail::kNoHold;
using detail::kPlanObj;
using detail::now_ns;

constexpr char kReqCursorObj[] = "pipe.cursors";
constexpr char kRecStateObj[] = "pipe.recstate";

std::string stream_hist(std::uint32_t stream) {
  return "stream" + std::to_string(stream) + ".hist";
}
std::string req_link_name(std::uint32_t stream) { return "req" + std::to_string(stream); }
constexpr char kResLink[] = "res";

/// One token-request frag, ingress -> counter.
struct ReqFrag {
  std::uint64_t req_seq = 0;   ///< per-stream request index
  std::uint64_t start_ns = 0;  ///< when ingress published (operation start)
  std::uint32_t count = 0;     ///< tokens requested (== batch except the tail)
  std::uint32_t stream = 0;    ///< ingress index
};
static_assert(sizeof(ReqFrag) == 24);

/// One drained batch, counter -> record; `count` values follow the header.
struct ResFrag {
  std::uint64_t req_seq = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;  ///< when the counter finished next_batch
  std::uint32_t count = 0;
  std::uint32_t stream = 0;
};
static_assert(sizeof(ResFrag) == 32);

/// Per-ingress published-request watermark (ingress-owned line).
struct alignas(64) IngressCursor {
  std::atomic<std::uint64_t> reqs_pub{0};
};

/// Per-stream record-side state (record-owned line; ingress reads
/// `committed` for the kill-watermark hold, the supervisor reads all of it
/// for progress and the final merge).
struct alignas(64) RecState {
  std::atomic<std::uint64_t> committed{0};      ///< fully recorded ops
  std::atomic<std::uint64_t> reqs_recorded{0};  ///< record's dedup watermark
  std::atomic<std::uint64_t> dups{0};           ///< at-least-once replays dropped
  std::atomic<std::uint64_t> gaps{0};           ///< req_seq skips (invariant breach)
};
static_assert(sizeof(IngressCursor) == 64 && sizeof(RecState) == 64);

/// Deterministic shape of one pipelined run, recomputed identically in
/// every process: per-stream op quotas and the request schedule over them.
struct PipeShape {
  std::uint32_t streams = 0;
  std::uint32_t batch = 0;
  std::vector<std::uint64_t> quota;   ///< ops per stream
  std::vector<std::uint64_t> n_reqs;  ///< requests per stream
  std::uint64_t total_reqs = 0;

  static PipeShape make(std::uint64_t total_ops, std::uint32_t streams,
                        std::uint32_t batch) {
    PipeShape shape;
    shape.streams = streams;
    shape.batch = batch;
    shape.quota = run::issuer_quotas(total_ops, streams);
    shape.n_reqs.resize(streams);
    for (std::uint32_t s = 0; s < streams; ++s) {
      shape.n_reqs[s] = (shape.quota[s] + batch - 1) / batch;
      shape.total_reqs += shape.n_reqs[s];
    }
    return shape;
  }
  std::uint32_t count_of(std::uint32_t stream, std::uint64_t req) const {
    const std::uint64_t done = req * batch;
    return static_cast<std::uint32_t>(std::min<std::uint64_t>(batch, quota[stream] - done));
  }
};

/// Tile numbering: 0 = counter, 1..streams = ingress, streams + 1 = record.
constexpr std::uint32_t counter_tile() { return 0; }
std::uint32_t ingress_tile(std::uint32_t stream) { return 1 + stream; }
std::uint32_t record_tile(std::uint32_t streams) { return 1 + streams; }

/// The pipelined analogue of counter_deploy's hold rendezvous: ingress
/// refuses to *publish* past the kill watermark (measured in recorded ops,
/// the pipeline's committed truth) until the owed SIGKILL has landed. The
/// in-flight slack between published and recorded is bounded by the link
/// depths, so the overshoot past the watermark is bounded too.
bool wait_for_hold(ControlBlock* ctl, const RecState* rec, std::uint32_t streams) {
  while (true) {
    const std::uint64_t hold = ctl->hold.load(std::memory_order_acquire);
    if (hold == kNoHold) return true;
    std::uint64_t committed = 0;
    for (std::uint32_t s = 0; s < streams; ++s) {
      committed += rec[s].committed.load(std::memory_order_acquire);
    }
    if (committed < hold) return true;
    if (ctl->stop.load(std::memory_order_acquire) != 0) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

struct TileEnv {
  shm::Workspace ws;
  ControlBlock* ctl = nullptr;
  IngressCursor* cursors = nullptr;
  RecState* rec = nullptr;
};

/// Re-attach the workspace and resolve the objects every pipeline tile
/// needs. Nonzero = tile exit code: 10 attach failed, 11 object missing.
int open_tile_env(int ws_fd, TileEnv* env) {
  std::string error;
  if (!shm::Workspace::attach(ws_fd, &env->ws, &error)) return 10;
  env->ctl = static_cast<ControlBlock*>(env->ws.find(kCtlObj));
  env->cursors = static_cast<IngressCursor*>(env->ws.find(kReqCursorObj));
  env->rec = static_cast<RecState*>(env->ws.find(kRecStateObj));
  if (env->ctl == nullptr || env->cursors == nullptr || env->rec == nullptr) return 11;
  return 0;
}

/// Exit code 12: a link object failed Ring::attach (corrupt geometry).
int attach_link(shm::Workspace& ws, const std::string& link_name, link::Ring* out) {
  std::uint64_t footprint = 0;
  void* mem = ws.find("link." + link_name, &footprint);
  if (mem == nullptr) return 11;
  std::string error;
  if (!link::Ring::attach(mem, footprint, out, &error)) return 12;
  return 0;
}

bool boot_barrier(ControlBlock* ctl, std::uint32_t tile) {
  ctl->tiles[tile].state.store(detail::kReady, std::memory_order_release);
  while (ctl->go.load(std::memory_order_acquire) == 0) {
    if (ctl->stop.load(std::memory_order_acquire) != 0) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return true;
}

// -- link-transport tile bodies ---------------------------------------

int ingress_main(const PipeShape& shape, std::uint32_t stream, int ws_fd) {
  TileEnv env;
  if (const int rc = open_tile_env(ws_fd, &env)) return rc;
  link::Ring ring;
  if (const int rc = attach_link(env.ws, req_link_name(stream), &ring)) return rc;
  ring.resync_producer();
  if (!boot_barrier(env.ctl, ingress_tile(stream))) return 0;

  IngressCursor& cursor = env.cursors[stream];
  std::uint64_t r = cursor.reqs_pub.load(std::memory_order_acquire);
  while (r < shape.n_reqs[stream]) {
    if (env.ctl->stop.load(std::memory_order_acquire) != 0) return 0;
    if (!wait_for_hold(env.ctl, env.rec, shape.streams)) return 0;
    ReqFrag req;
    req.req_seq = r;
    req.start_ns = now_ns();
    req.count = shape.count_of(stream, r);
    req.stream = stream;
    if (!ring.send(r, &req, sizeof(req), 0, &env.ctl->stop)) return 0;
    // Publish-then-count: a kill landing here resends req_seq r, which
    // record drops against its watermark (at-least-once, never lost).
    cursor.reqs_pub.store(r + 1, std::memory_order_release);
    ++r;
  }
  env.ctl->tiles[ingress_tile(stream)].state.store(kDone, std::memory_order_release);
  return 0;
}

int counter_main(const DeployOptions& options, const PipeShape& shape, int ws_fd) {
  TileEnv env;
  if (const int rc = open_tile_env(ws_fd, &env)) return rc;
  std::uint64_t plan_footprint = 0;
  void* plan_base = env.ws.find(kPlanObj, &plan_footprint);
  if (plan_base == nullptr) return 11;
  const topo::Network net = options.spec.build_network();
  rt::RoutingPlan plan(net, counter_options(options.spec),
                       rt::PlanArena{plan_base, plan_footprint, /*attach=*/true});

  std::vector<link::Ring> req_rings(shape.streams);
  std::vector<link::Consumer> req_in(shape.streams);
  for (std::uint32_t s = 0; s < shape.streams; ++s) {
    if (const int rc = attach_link(env.ws, req_link_name(s), &req_rings[s])) return rc;
    req_in[s] = req_rings[s].consumer(0);
  }
  link::Ring res_ring;
  if (const int rc = attach_link(env.ws, kResLink, &res_ring)) return rc;
  res_ring.resync_producer();
  if (!boot_barrier(env.ctl, counter_tile())) return 0;

  std::vector<std::uint8_t> out(sizeof(ResFrag) + std::size_t{shape.batch} * 8);
  std::vector<std::uint64_t> values(shape.batch);
  const std::uint32_t input_width = plan.input_width();
  while (env.ctl->stop.load(std::memory_order_acquire) == 0) {
    bool progress = false;
    for (std::uint32_t s = 0; s < shape.streams; ++s) {
      link::Frag meta;
      ReqFrag req;
      const auto poll = req_in[s].read(&meta, &req, sizeof(req));
      if (poll != link::Consumer::Poll::kFrag) continue;  // reliable: never overrun
      progress = true;
      const std::uint32_t n = std::min(req.count, shape.batch);
      plan.next_batch(/*thread=*/0, req.stream % input_width,
                      std::span<std::uint64_t>(values.data(), n));
      auto* res = reinterpret_cast<ResFrag*>(out.data());
      res->req_seq = req.req_seq;
      res->start_ns = req.start_ns;
      res->end_ns = now_ns();
      res->count = n;
      res->stream = req.stream;
      std::memcpy(out.data() + sizeof(ResFrag), values.data(), std::size_t{n} * 8);
      if (!res_ring.send(req.req_seq, out.data(),
                         static_cast<std::uint32_t>(sizeof(ResFrag) + std::size_t{n} * 8),
                         0, &env.ctl->stop)) {
        return 0;
      }
      // Advance only after the response is in the res ring: a kill before
      // this point replays the request, and the replay's response is
      // deduped at record (the values it claimed are the loss bound).
      req_in[s].advance();
    }
    if (!progress) std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  env.ctl->tiles[counter_tile()].state.store(kDone, std::memory_order_release);
  return 0;
}

int record_main(const PipeShape& shape, int ws_fd) {
  TileEnv env;
  if (const int rc = open_tile_env(ws_fd, &env)) return rc;
  std::vector<OpRecord*> hist(shape.streams);
  for (std::uint32_t s = 0; s < shape.streams; ++s) {
    hist[s] = static_cast<OpRecord*>(env.ws.find(stream_hist(s)));
    if (hist[s] == nullptr) return 11;
  }
  link::Ring res_ring;
  if (const int rc = attach_link(env.ws, kResLink, &res_ring)) return rc;
  link::Consumer in = res_ring.consumer(0);
  if (!boot_barrier(env.ctl, record_tile(shape.streams))) return 0;

  const auto total_recorded = [&] {
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < shape.streams; ++s) {
      total += env.rec[s].reqs_recorded.load(std::memory_order_relaxed);
    }
    return total;
  };
  std::vector<std::uint8_t> buf(sizeof(ResFrag) + std::size_t{shape.batch} * 8);
  while (total_recorded() < shape.total_reqs) {
    link::Frag meta;
    const auto poll = in.read(&meta, buf.data(), static_cast<std::uint32_t>(buf.size()));
    if (poll != link::Consumer::Poll::kFrag) {
      if (env.ctl->stop.load(std::memory_order_acquire) != 0) return 0;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      continue;
    }
    const auto* res = reinterpret_cast<const ResFrag*>(buf.data());
    const auto* vals = reinterpret_cast<const std::uint64_t*>(buf.data() + sizeof(ResFrag));
    RecState& rs = env.rec[res->stream];
    const std::uint64_t exp = rs.reqs_recorded.load(std::memory_order_relaxed);
    if (res->req_seq < exp) {
      rs.dups.fetch_add(1, std::memory_order_relaxed);
    } else if (res->req_seq > exp) {
      rs.gaps.fetch_add(1, std::memory_order_relaxed);  // reliable links: cannot happen
    } else {
      const std::uint64_t base = res->req_seq * shape.batch;
      for (std::uint32_t j = 0; j < res->count; ++j) {
        OpRecord& rec = hist[res->stream][base + j];
        rec.start_ns = res->start_ns;
        rec.end_ns = res->end_ns;
        rec.value = vals[j];
        rec.actor = res->stream;
      }
      rs.committed.store(base + res->count, std::memory_order_release);
      rs.reqs_recorded.store(exp + 1, std::memory_order_release);
    }
    // Advance last: record is a reliable consumer, so until here the frag
    // is pinned in the ring and a restarted record redoes idempotent work.
    in.advance();
  }
  env.ctl->tiles[record_tile(shape.streams)].state.store(kDone, std::memory_order_release);
  return 0;
}

// -- socketpair-transport tile bodies (the per-op handoff ablation) ----

bool write_msg(int fd, const void* data, std::size_t size) {
  while (true) {
    const ssize_t n = ::send(fd, data, size, 0);
    if (n == static_cast<ssize_t>(size)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
}

/// SOCK_SEQPACKET read of one whole message; 0 on peer close/error.
ssize_t read_msg(int fd, void* data, std::size_t cap) {
  while (true) {
    const ssize_t n = ::recv(fd, data, cap, 0);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    return 0;
  }
}

int sock_ingress_main(const PipeShape& shape, std::uint32_t stream, int ws_fd, int fd) {
  TileEnv env;
  if (const int rc = open_tile_env(ws_fd, &env)) return rc;
  if (!boot_barrier(env.ctl, ingress_tile(stream))) return 0;
  for (std::uint64_t k = 0; k < shape.quota[stream]; ++k) {
    if (env.ctl->stop.load(std::memory_order_acquire) != 0) return 0;
    ReqFrag req{k, now_ns(), 1, stream};
    if (!write_msg(fd, &req, sizeof(req))) return 13;
  }
  ReqFrag done{0, 0, 0, stream};  // count == 0: this stream is drained
  if (!write_msg(fd, &done, sizeof(done))) return 13;
  env.ctl->tiles[ingress_tile(stream)].state.store(kDone, std::memory_order_release);
  return 0;
}

int sock_counter_main(const DeployOptions& options, const PipeShape& shape, int ws_fd,
                      const std::vector<int>& req_fds, int res_fd) {
  TileEnv env;
  if (const int rc = open_tile_env(ws_fd, &env)) return rc;
  std::uint64_t plan_footprint = 0;
  void* plan_base = env.ws.find(kPlanObj, &plan_footprint);
  if (plan_base == nullptr) return 11;
  const topo::Network net = options.spec.build_network();
  rt::RoutingPlan plan(net, counter_options(options.spec),
                       rt::PlanArena{plan_base, plan_footprint, /*attach=*/true});
  if (!boot_barrier(env.ctl, counter_tile())) return 0;

  const std::uint32_t input_width = plan.input_width();
  std::vector<pollfd> fds(shape.streams);
  for (std::uint32_t s = 0; s < shape.streams; ++s) fds[s] = {req_fds[s], POLLIN, 0};
  std::uint32_t drained = 0;
  std::uint8_t out[sizeof(ResFrag) + 8];
  while (drained < shape.streams) {
    if (env.ctl->stop.load(std::memory_order_acquire) != 0) return 0;
    if (::poll(fds.data(), fds.size(), 100) <= 0) continue;
    for (std::uint32_t s = 0; s < shape.streams; ++s) {
      if ((fds[s].revents & POLLIN) == 0) continue;
      ReqFrag req;
      if (read_msg(fds[s].fd, &req, sizeof(req)) != sizeof(req)) return 13;
      if (req.count == 0) {
        fds[s].fd = -1;  // stream done; stop polling it
        ++drained;
        continue;
      }
      std::uint64_t value = 0;
      plan.next_batch(/*thread=*/0, req.stream % input_width,
                      std::span<std::uint64_t>(&value, 1));
      auto* res = reinterpret_cast<ResFrag*>(out);
      *res = ResFrag{req.req_seq, req.start_ns, now_ns(), 1, req.stream};
      std::memcpy(out + sizeof(ResFrag), &value, 8);
      if (!write_msg(res_fd, out, sizeof(out))) return 13;
    }
  }
  ResFrag done{0, 0, 0, 0, 0};  // count == 0: every stream is drained
  if (!write_msg(res_fd, &done, sizeof(done))) return 13;
  env.ctl->tiles[counter_tile()].state.store(kDone, std::memory_order_release);
  return 0;
}

int sock_record_main(const PipeShape& shape, int ws_fd, int fd) {
  TileEnv env;
  if (const int rc = open_tile_env(ws_fd, &env)) return rc;
  std::vector<OpRecord*> hist(shape.streams);
  for (std::uint32_t s = 0; s < shape.streams; ++s) {
    hist[s] = static_cast<OpRecord*>(env.ws.find(stream_hist(s)));
    if (hist[s] == nullptr) return 11;
  }
  if (!boot_barrier(env.ctl, record_tile(shape.streams))) return 0;
  std::uint8_t buf[sizeof(ResFrag) + 8];
  while (true) {
    if (env.ctl->stop.load(std::memory_order_acquire) != 0) return 0;
    const ssize_t n = read_msg(fd, buf, sizeof(buf));
    if (n < static_cast<ssize_t>(sizeof(ResFrag))) return 13;
    const auto* res = reinterpret_cast<const ResFrag*>(buf);
    if (res->count == 0) break;
    RecState& rs = env.rec[res->stream];
    std::uint64_t value = 0;
    std::memcpy(&value, buf + sizeof(ResFrag), 8);
    OpRecord& rec = hist[res->stream][res->req_seq];  // per-op: req_seq == op index
    rec.start_ns = res->start_ns;
    rec.end_ns = res->end_ns;
    rec.value = value;
    rec.actor = res->stream;
    rs.committed.store(res->req_seq + 1, std::memory_order_release);
    rs.reqs_recorded.store(res->req_seq + 1, std::memory_order_release);
  }
  env.ctl->tiles[record_tile(shape.streams)].state.store(kDone, std::memory_order_release);
  return 0;
}

DeployReport failed(DeployReport report, const std::string& why) {
  report.ok = false;
  report.error = why;
  return report;
}

}  // namespace

DeployReport run_pipeline_deployment(const DeployOptions& options) {
  DeployReport report;
  report.pipelined = true;
  const bool use_links = options.transport == DeployOptions::PipeTransport::kLink;
  report.per_op_ablation = !use_links;
  const std::uint32_t streams = options.tiles != 0        ? options.tiles
                                : options.spec.tiles != 0 ? options.spec.tiles
                                                          : 2;
  report.tiles = streams;
  report.threads_per_tile = 1;

  std::string error;
  if (!validate_deploy_spec(options.spec, streams, 1, &error)) return failed(report, error);
  if (options.threads_per_tile != 1) {
    return failed(report,
                  "deploy: pipeline tiles are single-stage loops; threads_per_tile must "
                  "be 1 (got " +
                      std::to_string(options.threads_per_tile) + ")");
  }
  if (streams > kMaxTiles - 2) {
    return failed(report, "deploy: pipeline needs counter+record slots; tiles must be <= " +
                              std::to_string(kMaxTiles - 2));
  }
  if (std::uint64_t{streams} + 2 > options.spec.max_threads) {
    return failed(report, "deploy: pipeline uses tiles+2 thread slices (" +
                              std::to_string(streams + 2) +
                              ") which exceeds the spec's thread bound " +
                              std::to_string(options.spec.max_threads) +
                              " (raise threads=)");
  }
  if (options.batch == 0) return failed(report, "deploy: batch must be >= 1");
  if (options.total_ops < streams) {
    return failed(report, "deploy: total_ops must cover at least one op per stream");
  }
  if (!use_links && options.spec.fault.die_every != 0) {
    return failed(report,
                  "deploy: the socketpair transport is a clean-run ablation; die: "
                  "requires the link transport");
  }
  link::RingOptions ring_check;
  ring_check.depth = options.link_depth;
  ring_check.burst = options.link_burst;
  if (use_links && !link::Ring::validate(ring_check, &error)) return failed(report, error);

  const std::uint32_t batch = use_links ? options.batch : 1;  // socketpair is per-op
  const PipeShape shape = PipeShape::make(options.total_ops, streams, batch);
  const std::uint32_t n_tiles = streams + 2;
  const std::string ws_name = options.spec.ws.empty() ? "cnet-pipe" : options.spec.ws;

  const topo::Network net = options.spec.build_network();
  const rt::CounterOptions copts = counter_options(options.spec);
  const std::size_t plan_footprint = rt::RoutingPlan::state_footprint(net, copts);
  const std::uint32_t mtu_res =
      static_cast<std::uint32_t>(sizeof(ResFrag) + std::size_t{shape.batch} * 8);

  // Declare the deployment through the builder so link geometry, object
  // footprints, and writer discipline are validated before anything forks.
  Builder builder;
  builder.workspace(ws_name);
  builder.object(kPlanObj, ws_name, rt::RoutingPlan::state_align(),
                 std::max<std::uint64_t>(plan_footprint, 1), /*multi_writer=*/true);
  builder.object(kCtlObj, ws_name, alignof(ControlBlock), sizeof(ControlBlock),
                 /*multi_writer=*/true);
  builder.object(kReqCursorObj, ws_name, alignof(IngressCursor),
                 std::uint64_t{streams} * sizeof(IngressCursor), /*multi_writer=*/true);
  builder.object(kRecStateObj, ws_name, alignof(RecState),
                 std::uint64_t{streams} * sizeof(RecState));
  for (std::uint32_t s = 0; s < streams; ++s) {
    builder.object(stream_hist(s), ws_name, alignof(OpRecord),
                   std::max<std::uint64_t>(shape.quota[s], 1) * sizeof(OpRecord));
  }
  builder.tile("counter", counter_tile(), 1)
      .uses(kPlanObj, MapMode::kReadWrite)
      .uses(kCtlObj, MapMode::kReadWrite)
      .uses(kReqCursorObj, MapMode::kReadOnly);
  for (std::uint32_t s = 0; s < streams; ++s) {
    builder.tile("ingress" + std::to_string(s), ingress_tile(s), 1)
        .uses(kCtlObj, MapMode::kReadWrite)
        .uses(kReqCursorObj, MapMode::kReadWrite)
        .uses(kRecStateObj, MapMode::kReadOnly);
  }
  builder.tile("record", record_tile(streams), 1)
      .uses(kCtlObj, MapMode::kReadWrite)
      .uses(kRecStateObj, MapMode::kReadWrite);
  for (std::uint32_t s = 0; s < streams; ++s) {
    builder.uses(stream_hist(s), MapMode::kReadWrite);
  }
  if (use_links) {
    for (std::uint32_t s = 0; s < streams; ++s) {
      builder.link(req_link_name(s), ws_name, "ingress" + std::to_string(s),
                   options.link_depth, options.link_burst, sizeof(ReqFrag));
      builder.uses_link("ingress" + std::to_string(s), req_link_name(s), LinkDir::kOut);
      builder.uses_link("counter", req_link_name(s), LinkDir::kIn);
    }
    builder.link(kResLink, ws_name, "counter", options.link_depth, options.link_burst,
                 mtu_res);
    builder.uses_link("counter", kResLink, LinkDir::kOut);
    builder.uses_link("record", kResLink, LinkDir::kIn);
  }
  Topology topology;
  if (!builder.finish(&topology, &error)) return failed(report, error);
  std::map<std::string, shm::Workspace> workspaces;
  if (!materialize(topology, &workspaces, &error)) return failed(report, error);
  shm::Workspace& ws = workspaces.at(ws_name);

  // Supervisor-side construction; tiles only attach.
  std::uint64_t found_footprint = 0;
  void* plan_base = ws.find(kPlanObj, &found_footprint);
  rt::RoutingPlan plan(net, copts, rt::PlanArena{plan_base, found_footprint, false});
  auto* ctl = new (ws.find(kCtlObj)) ControlBlock();
  auto* cursors = static_cast<IngressCursor*>(ws.find(kReqCursorObj));
  auto* rec = static_cast<RecState*>(ws.find(kRecStateObj));
  for (std::uint32_t s = 0; s < streams; ++s) {
    new (&cursors[s]) IngressCursor();
    new (&rec[s]) RecState();
  }

  // Socketpair transport: pre-fork SEQPACKET pairs, [0] for the sender.
  std::vector<int> req_sp_tx(streams, -1), req_sp_rx(streams, -1);
  int res_sp_tx = -1, res_sp_rx = -1;
  const auto close_all = [&] {
    for (int& fd : req_sp_tx) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    for (int& fd : req_sp_rx) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    if (res_sp_tx >= 0) ::close(res_sp_tx);
    if (res_sp_rx >= 0) ::close(res_sp_rx);
    res_sp_tx = res_sp_rx = -1;
  };
  if (!use_links) {
    int sp[2];
    for (std::uint32_t s = 0; s < streams; ++s) {
      if (::socketpair(AF_UNIX, SOCK_SEQPACKET, 0, sp) != 0) {
        close_all();
        return failed(report, std::string("deploy: socketpair: ") + std::strerror(errno));
      }
      req_sp_tx[s] = sp[0];
      req_sp_rx[s] = sp[1];
    }
    if (::socketpair(AF_UNIX, SOCK_SEQPACKET, 0, sp) != 0) {
      close_all();
      return failed(report, std::string("deploy: socketpair: ") + std::strerror(errno));
    }
    res_sp_tx = sp[0];
    res_sp_rx = sp[1];
  }

  const int ws_fd = ws.fd();
  const DeployOptions child_options = options;
  Supervisor supervisor(n_tiles, [&child_options, &shape, &req_sp_rx, &req_sp_tx, res_sp_tx,
                                  res_sp_rx, use_links, streams, ws_fd](std::uint32_t tile) {
    if (use_links) {
      if (tile == counter_tile()) return counter_main(child_options, shape, ws_fd);
      if (tile == record_tile(streams)) return record_main(shape, ws_fd);
      return ingress_main(shape, tile - 1, ws_fd);
    }
    if (tile == counter_tile()) {
      return sock_counter_main(child_options, shape, ws_fd, req_sp_rx, res_sp_tx);
    }
    if (tile == record_tile(streams)) return sock_record_main(shape, ws_fd, res_sp_rx);
    return sock_ingress_main(shape, tile - 1, ws_fd, req_sp_tx[tile - 1]);
  });

  const auto fatal = [&](const std::string& why) {
    ctl->stop.store(1, std::memory_order_release);
    close_all();
    return failed(std::move(report), why);
  };

  for (std::uint32_t i = 0; i < n_tiles; ++i) {
    if (!supervisor.spawn(i, &error)) return fatal(error);
  }

  const std::uint64_t deadline =
      now_ns() + static_cast<std::uint64_t>(options.timeout_s * 1e9);
  for (std::uint32_t ready = 0; ready < n_tiles;) {
    ready = 0;
    for (std::uint32_t i = 0; i < n_tiles; ++i) {
      if (ctl->tiles[i].state.load(std::memory_order_acquire) != kBoot) ++ready;
    }
    if (ready == n_tiles) break;
    if (!supervisor.poll().empty()) return fatal("deploy: a tile died during boot");
    if (now_ns() > deadline) return fatal("deploy: boot timed out");
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  const std::uint64_t die_every = use_links ? options.spec.fault.die_every : 0;
  std::uint64_t next_kill = die_every;
  const auto arm_hold = [&](std::uint64_t kills_so_far) {
    const bool armed = die_every != 0 && kills_so_far < options.max_restarts &&
                       next_kill < options.total_ops;
    ctl->hold.store(armed ? next_kill : kNoHold, std::memory_order_release);
  };
  arm_hold(0);
  ctl->go.store(1, std::memory_order_release);

  const auto committed_ops = [&] {
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < streams; ++s) {
      total += rec[s].committed.load(std::memory_order_acquire);
    }
    return total;
  };
  const auto recorded_reqs = [&] {
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < streams; ++s) {
      total += rec[s].reqs_recorded.load(std::memory_order_acquire);
    }
    return total;
  };

  // Monitor: reap deaths, restart casualties against the persistent
  // workspace and rings, and deliver the die: schedule as real SIGKILLs —
  // the same kill-at-reap discipline as counter_deploy. The counter and
  // record stay up until the run completes, so alongside the unfinished
  // ingress tiles they are standing victims for the rotor.
  std::uint64_t kills = 0, restarts = 0;
  std::uint32_t victim_rotor = 0;
  bool kill_pending = false;
  std::uint32_t pending_victim = 0;
  bool stop_sent = false;
  std::vector<bool> finished(n_tiles, false);
  while (true) {
    for (const Supervisor::Death& death : supervisor.poll()) {
      if (kill_pending && death.tile == pending_victim) {
        kill_pending = false;
        if (death.signaled) {
          ++kills;
          next_kill += die_every;
          arm_hold(kills);  // release the held ingress loops toward the next mark
        }
      }
      if (!death.signaled && death.code == 0) {
        finished[death.tile] = true;
        continue;
      }
      if (!use_links) {
        return fatal("deploy: a pipeline tile died under the socketpair transport (tile " +
                     std::to_string(death.tile) + ", " +
                     (death.signaled ? "signal " : "exit ") + std::to_string(death.code) +
                     "); per-fd stream state does not survive restarts");
      }
      if (restarts >= options.max_restarts) {
        return fatal("deploy: restart budget (" + std::to_string(options.max_restarts) +
                     ") exhausted; last death: tile " + std::to_string(death.tile) +
                     (death.signaled ? " signal " : " exit ") + std::to_string(death.code));
      }
      ++restarts;
      if (!supervisor.spawn(death.tile, &error)) return fatal(error);
    }
    if (!stop_sent && recorded_reqs() >= shape.total_reqs) {
      // Everything is durably recorded; release the counter (which only
      // exits on stop) and any held ingress loops.
      ctl->stop.store(1, std::memory_order_release);
      stop_sent = true;
    }
    if (std::all_of(finished.begin(), finished.end(), [](bool f) { return f; })) break;

    if (die_every != 0 && !kill_pending && kills < options.max_restarts) {
      const std::uint64_t committed = committed_ops();
      if (committed >= next_kill && committed < options.total_ops) {
        for (std::uint32_t tried = 0; tried < n_tiles; ++tried) {
          const std::uint32_t victim = victim_rotor++ % n_tiles;
          if (finished[victim] || !supervisor.alive(victim)) continue;
          if (victim >= 1 && victim <= streams) {
            // An ingress that already published everything may be exiting;
            // a SIGKILL could race its clean exit and evaporate. The
            // counter and record never exit before stop/completion, so
            // they are always safe victims.
            const std::uint32_t s = victim - 1;
            if (cursors[s].reqs_pub.load(std::memory_order_acquire) >= shape.n_reqs[s]) {
              continue;
            }
          }
          if (supervisor.kill_tile(victim)) {
            kill_pending = true;
            pending_victim = victim;
          }
          break;
        }
      }
    }
    if (now_ns() > deadline) return fatal("deploy: run timed out");
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  close_all();

  report.kills = kills;
  report.restarts = restarts;
  report.issued = plan.issued();
  std::uint64_t gaps = 0;
  for (std::uint32_t s = 0; s < streams; ++s) {
    report.dup_requests += rec[s].dups.load(std::memory_order_acquire);
    gaps += rec[s].gaps.load(std::memory_order_acquire);
  }

  // Merge each stream's history below its committed watermark.
  for (std::uint32_t s = 0; s < streams; ++s) {
    const auto* hist = static_cast<const OpRecord*>(ws.find(stream_hist(s)));
    const std::uint64_t committed = rec[s].committed.load(std::memory_order_acquire);
    for (std::uint64_t k = 0; k < committed; ++k) {
      lin::Operation op;
      op.start = static_cast<double>(hist[k].start_ns);
      op.end = static_cast<double>(hist[k].end_ns);
      op.value = hist[k].value;
      op.actor = hist[k].actor;
      report.history.push_back(op);
    }
  }
  report.ops_recorded = report.history.size();
  report.lost_values = report.issued - report.ops_recorded;

  double min_start = 0.0, max_end = 0.0;
  for (std::size_t i = 0; i < report.history.size(); ++i) {
    const lin::Operation& op = report.history[i];
    if (i == 0 || op.start < min_start) min_start = op.start;
    if (i == 0 || op.end > max_end) max_end = op.end;
  }
  report.makespan_ns = max_end - min_start;
  if (report.makespan_ns > 0) {
    report.throughput_ops_s =
        static_cast<double>(report.ops_recorded) / (report.makespan_ns * 1e-9);
  }

  if (gaps != 0) {
    return failed(std::move(report),
                  "deploy: record observed " + std::to_string(gaps) +
                      " request gaps - a reliable link dropped or reordered a frag");
  }

  // Checks, mirroring counter_deploy: the step property from the plan's
  // own output counters, then exact-range (clean) or loss-bounded
  // uniqueness (kills). The pipeline's in-flight loss per kill is 2 x
  // batch — a drained-but-unsent batch plus a replayed request's values —
  // and tokens vaporized mid-network skew exits by at most batch per kill.
  const std::uint32_t w = net.output_width();
  std::vector<std::uint64_t> per_output(w);
  for (std::uint32_t p = 0; p < w; ++p) per_output[p] = plan.output_count(p);
  if (kills == 0) {
    report.step_ok = topo::has_step_property(per_output);
  } else {
    const std::uint64_t step_slack = kills * shape.batch;
    const auto [mn, mx] = std::minmax_element(per_output.begin(), per_output.end());
    report.step_ok = *mx - *mn <= 1 + step_slack;
  }
  report.analysis = lin::check(report.history);

  if (kills == 0) {
    report.guarantee = DeployReport::Guarantee::kLinearizable;
    report.counting_ok = lin::values_form_range(report.history, &report.counting_message);
    if (report.counting_ok && report.lost_values != 0) {
      report.counting_ok = false;
      report.counting_message = "plan issued " + std::to_string(report.issued) +
                                " tokens but only " + std::to_string(report.ops_recorded) +
                                " were recorded, with no kills to explain the gap";
    }
    if (report.counting_ok) report.counting_message = "values form an exact range";
  } else {
    report.guarantee = DeployReport::Guarantee::kCountingOnlyLossy;
    std::vector<std::uint64_t> values;
    values.reserve(report.history.size());
    for (const lin::Operation& op : report.history) values.push_back(op.value);
    std::sort(values.begin(), values.end());
    const bool unique = std::adjacent_find(values.begin(), values.end()) == values.end();
    bool claimed = true;
    for (const std::uint64_t v : values) {
      const std::uint32_t port = static_cast<std::uint32_t>(v % w);
      if (v / w >= per_output[port]) {
        claimed = false;
        break;
      }
    }
    const std::uint64_t loss_bound = kills * 2 * shape.batch;
    report.counting_ok = unique && claimed && report.lost_values <= loss_bound &&
                         report.ops_recorded == options.total_ops;
    if (report.counting_ok) {
      report.counting_message =
          "unique claimed values; " + std::to_string(report.lost_values) +
          " lost in flight (bound " + std::to_string(loss_bound) + ", " +
          std::to_string(report.dup_requests) + " dup requests dropped)";
    } else if (!unique) {
      report.counting_message = "duplicate value in the merged history";
    } else if (!claimed) {
      report.counting_message = "history holds a value the plan never issued";
    } else if (report.ops_recorded != options.total_ops) {
      report.counting_message = "recorded " + std::to_string(report.ops_recorded) + " of " +
                                std::to_string(options.total_ops) + " ops";
    } else {
      report.counting_message = std::to_string(report.lost_values) +
                                " values lost exceeds the in-flight bound " +
                                std::to_string(loss_bound);
    }
  }

  report.ok = report.counting_ok && report.step_ok;
  return report;
}

}  // namespace cnet::deploy
