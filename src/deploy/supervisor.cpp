#include "deploy/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <utility>

namespace cnet::deploy {

Supervisor::Supervisor(std::uint32_t tile_count, TileMain main)
    : pids_(tile_count, -1), main_(std::move(main)) {}

Supervisor::~Supervisor() {
  for (std::uint32_t tile = 0; tile < pids_.size(); ++tile) {
    if (pids_[tile] > 0) {
      ::kill(pids_[tile], SIGKILL);
      ::waitpid(pids_[tile], nullptr, 0);
      pids_[tile] = -1;
    }
  }
}

bool Supervisor::spawn(std::uint32_t tile, std::string* error) {
  if (tile >= pids_.size() || pids_[tile] > 0) {
    if (error != nullptr) {
      *error = "supervisor: tile " + std::to_string(tile) +
               (tile >= pids_.size() ? " out of range" : " already running");
    }
    return false;
  }
  // The child inherits copies of stdio buffers; flush so buffered parent
  // output is not emitted twice.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    if (error != nullptr) *error = "supervisor: fork failed";
    return false;
  }
  if (pid == 0) {
    // Child: run the tile and leave without unwinding the parent's stack
    // or running its atexit chain.
    ::_exit(main_(tile));
  }
  pids_[tile] = pid;
  ++spawns_;
  return true;
}

bool Supervisor::alive(std::uint32_t tile) const {
  return tile < pids_.size() && pids_[tile] > 0;
}

std::uint32_t Supervisor::alive_count() const {
  std::uint32_t n = 0;
  for (const pid_t pid : pids_) n += pid > 0 ? 1 : 0;
  return n;
}

pid_t Supervisor::pid(std::uint32_t tile) const {
  return tile < pids_.size() ? pids_[tile] : -1;
}

std::vector<Supervisor::Death> Supervisor::poll() {
  std::vector<Death> deaths;
  for (std::uint32_t tile = 0; tile < pids_.size(); ++tile) {
    if (pids_[tile] <= 0) continue;
    int status = 0;
    const pid_t reaped = ::waitpid(pids_[tile], &status, WNOHANG);
    if (reaped != pids_[tile]) continue;
    Death death;
    death.tile = tile;
    if (WIFSIGNALED(status)) {
      death.signaled = true;
      death.code = WTERMSIG(status);
    } else {
      death.signaled = false;
      death.code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }
    deaths.push_back(death);
    pids_[tile] = -1;
  }
  return deaths;
}

bool Supervisor::kill_tile(std::uint32_t tile) {
  if (!alive(tile)) return false;
  return ::kill(pids_[tile], SIGKILL) == 0;
}

}  // namespace cnet::deploy
