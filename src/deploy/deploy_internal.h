// Shared guts of the process-tile runners (counter_deploy.cpp,
// pipeline_deploy.cpp): the workspace-resident control block, the
// commit-after-record stream cursors, and the object-naming/clock/option
// helpers both supervisors use. Internal to src/deploy — tests and tools
// stay on the counter_deploy.h surface.
#pragma once

#include <time.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "rt/network_counter.h"
#include "run/backend_spec.h"

namespace cnet::deploy::detail {

inline constexpr std::uint32_t kMaxTiles = 32;
inline constexpr char kPlanObj[] = "rt.plan";
inline constexpr char kCtlObj[] = "deploy.ctl";
inline constexpr char kCursorObj[] = "deploy.cursors";

inline std::string hist_name(std::uint32_t tile) {
  return "tile" + std::to_string(tile) + ".hist";
}

inline std::uint64_t now_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

enum TileState : std::uint32_t { kBoot = 0, kReady = 1, kDone = 2 };

struct alignas(64) TileSlot {
  std::atomic<std::uint32_t> state{kBoot};
};

/// hold sentinel: no kill pending, workers run free.
inline constexpr std::uint64_t kNoHold = ~0ull;

/// Workspace-resident run control. Written by the supervisor (go/stop/hold)
/// and by every tile (its own slot) — multi-writer by design.
///
/// `hold` makes the die: schedule deterministic instead of best-effort: it
/// is the next kill watermark (in globally committed ops), and workers
/// refuse to issue past it until the supervisor has delivered the SIGKILL
/// and advanced it. Without the rendezvous a fast run can complete inside
/// one supervisor sampling window and a scheduled kill silently never
/// happens (observed on a 1-core box).
struct ControlBlock {
  std::atomic<std::uint32_t> go{0};
  std::atomic<std::uint32_t> stop{0};
  std::atomic<std::uint64_t> hold{kNoHold};
  TileSlot tiles[kMaxTiles];
};

/// One per stream: how many of that stream's operations are fully recorded
/// in its history slice. The commit-after-record discipline makes this the
/// crash-consistency watermark — everything below it is a whole, valid
/// record no matter when the owning tile died.
struct alignas(64) StreamCursor {
  std::atomic<std::uint64_t> committed{0};
};

/// One completed operation in a history slice. Plain (non-atomic) fields:
/// visibility is guarded by the owning StreamCursor's release-store, and
/// only the one owning writer ever touches a slice.
struct OpRecord {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t value = 0;
  std::uint32_t actor = 0;
  std::uint32_t pad_ = 0;
};

inline rt::CounterOptions counter_options(const run::BackendSpec& spec) {
  rt::CounterOptions options;
  options.mode = rt::BalancerMode::kFetchAdd;  // validate_deploy_spec rejected mcs
  options.diffraction = false;
  options.max_threads = spec.max_threads;
  options.engine = rt::ExecutionEngine::kCompiledPlan;
  return options;
}

}  // namespace cnet::deploy::detail
