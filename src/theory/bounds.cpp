#include "theory/bounds.h"

#include <cmath>

#include "util/assert.h"

namespace cnet::theory {
namespace {

std::uint32_t log2_exact(std::uint32_t w) {
  CNET_CHECK(w != 0 && (w & (w - 1)) == 0);
  std::uint32_t lg = 0;
  while ((1u << lg) < w) ++lg;
  return lg;
}

}  // namespace

double finish_start_separation(std::uint32_t depth, double c1, double c2) {
  return static_cast<double>(depth) * c2 - 2.0 * static_cast<double>(depth) * c1;
}

double start_start_separation(std::uint32_t depth, double c1, double c2) {
  return 2.0 * static_cast<double>(depth) * (c2 - c1);
}

bool linearizable_guaranteed(double c1, double c2) { return c2 <= 2.0 * c1; }

bool violation_constructible(double c1, double c2) { return c2 > 2.0 * c1; }

double bitonic_wave_threshold(std::uint32_t width) {
  return (3.0 + static_cast<double>(log2_exact(width))) / 2.0;
}

std::uint32_t padding_prefix_length(std::uint32_t depth, std::uint32_t k) {
  CNET_CHECK(k >= 2);
  return depth * (k - 2);
}

std::uint32_t padded_depth(std::uint32_t depth, std::uint32_t k) {
  CNET_CHECK(k >= 2);
  return depth * (k - 1);
}

std::uint32_t bitonic_depth(std::uint32_t width) {
  const std::uint32_t lg = log2_exact(width);
  return lg * (lg + 1) / 2;
}

std::uint32_t periodic_depth(std::uint32_t width) {
  const std::uint32_t lg = log2_exact(width);
  return lg * lg;
}

std::uint32_t tree_depth(std::uint32_t width) { return log2_exact(width); }

double average_c2_over_c1(double tog, double wait) {
  CNET_CHECK(tog > 0.0);
  return (tog + wait) / tog;
}

}  // namespace cnet::theory
