// Closed-form results of §3 and §4, as executable formulas.
//
// These are deliberately tiny functions: the point of the module is to give
// the bounds a single authoritative home that the tests cross-validate
// against the simulators (e.g., the tree_separation_probe shows violations
// exactly up to finish_start_separation and never beyond it).
#pragma once

#include <cstdint>

namespace cnet::theory {

/// Thm 3.6: if T2 starts more than this after T1 *finishes*, T2 returns a
/// higher value (uniform network of depth h). May be negative, in which case
/// any non-overlapping pair is ordered (the network is linearizable).
double finish_start_separation(std::uint32_t depth, double c1, double c2);

/// Lemma 3.7: sufficient *start-start* separation: 2 * h * (c2 - c1).
double start_start_separation(std::uint32_t depth, double c1, double c2);

/// Cor 3.9: every uniform counting network is linearizable when c2 <= 2*c1.
bool linearizable_guaranteed(double c1, double c2);

/// Thm 4.1 / 4.3: trees and bitonic networks admit non-linearizable
/// executions exactly when c2 > 2*c1.
bool violation_constructible(double c1, double c2);

/// Thm 4.4: threshold on c2/c1 beyond which bitonic networks of width w
/// admit executions where a constant fraction of operations is
/// non-linearizable: (3 + log w) / 2.
double bitonic_wave_threshold(std::uint32_t width);

/// Cor 3.12: pass-through prefix length h*(k-2) that makes a depth-h uniform
/// counting network linearizable when c2 < k*c1 (k >= 2 known a priori).
std::uint32_t padding_prefix_length(std::uint32_t depth, std::uint32_t k);

/// Depth of the padded network: h*(k-1).
std::uint32_t padded_depth(std::uint32_t depth, std::uint32_t k);

/// Depth formulas of the constructions (cross-checked against the builders).
std::uint32_t bitonic_depth(std::uint32_t width);    ///< log w (log w + 1) / 2
std::uint32_t periodic_depth(std::uint32_t width);   ///< (log w)^2
std::uint32_t tree_depth(std::uint32_t width);       ///< log w

/// §5: the paper's estimate of the average c2/c1 ratio in the simulation
/// experiments: (Tog + W) / Tog, where Tog is the average time a token waits
/// before toggling a balancer and W the injected post-node delay.
double average_c2_over_c1(double tog, double wait);

}  // namespace cnet::theory
