// Run-to-run variance of the Figure 5/6 cells: the paper reports single
// simulation runs; this bench repeats representative cells over 10 seeds and
// reports mean ± sd of the non-linearizability fraction, so readers can tell
// which shape features are robust and which are within noise.
#include <cstdio>
#include <iostream>

#include "psim/machine.h"
#include "topo/builders.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace cnet;

  const topo::Network bitonic = topo::make_bitonic(32);
  const topo::Network tree = topo::make_counting_tree(32);
  constexpr int kSeeds = 10;

  std::printf("Non-linearizability fraction, mean +- sd over %d seeds, F = 50%%\n\n", kSeeds);

  Table table({"structure", "W", "n", "mean", "sd", "min", "max"});
  for (bool diffracting : {false, true}) {
    for (psim::Cycle wait : {1000ull, 10000ull, 100000ull}) {
      for (std::uint32_t n : {16u, 64u, 256u}) {
        Summary fractions;
        for (int seed = 0; seed < kSeeds; ++seed) {
          psim::MachineParams params;
          params.processors = n;
          params.total_ops = 5000;
          params.delayed_fraction = 0.5;
          params.wait_cycles = wait;
          params.use_diffraction = diffracting;
          params.seed = 977 + seed;
          const psim::MachineResult result =
              psim::run_workload(diffracting ? tree : bitonic, params);
          fractions.add(result.analysis.fraction());
        }
        table.add_row({diffracting ? "dtree" : "bitonic", std::to_string(wait),
                       std::to_string(n), Table::num(fractions.mean() * 100.0, 2) + "%",
                       Table::num(fractions.stddev() * 100.0, 2) + "%",
                       Table::num(fractions.min() * 100.0, 2) + "%",
                       Table::num(fractions.max() * 100.0, 2) + "%"});
      }
    }
  }
  table.print(std::cout);
  std::printf(
      "\nFeatures that survive the noise: zero cells stay zero; the tree dominates the\n"
      "bitonic at matched (W, n); W=100000 collapses at high n. Individual percentages\n"
      "move by a few points between seeds — as single-run paper figures would too.\n");
  return 0;
}
