// Figure 6 of the paper: as Figure 5 but with F = 50% delayed processors.
#include "fig_common.h"

int main() {
  cnet::bench::run_figure("Figure 6", /*fraction=*/0.50, /*ops=*/5000, /*seed=*/20260704);
  return 0;
}
