// Ablation for Thm 3.6 / Lemma 3.7: sweep the finish-start gap between the
// early fast token and the adversarial wave in the tree schedule, and locate
// the exact gap at which violations stop. Theory predicts the cutoff at
// h * (c2 - 2*c1), and the construction shows the bound is tight.
#include <cstdio>
#include <iostream>

#include "sim/scenarios.h"
#include "theory/bounds.h"
#include "util/table.h"

int main() {
  using namespace cnet;

  std::printf("Thm 3.6 separation sweep on Tree[w] (violation iff gap < h*(c2-2*c1))\n\n");

  Table table({"width", "c2/c1", "bound h(c2-2c1)", "gap/bound", "violations"});
  for (std::uint32_t w : {8u, 32u}) {
    for (double ratio : {3.0, 4.0, 8.0}) {
      const double c1 = 1.0;
      const double c2 = ratio;
      const double bound = theory::finish_start_separation(theory::tree_depth(w), c1, c2);
      for (double frac : {0.25, 0.50, 0.90, 0.99, 1.01, 1.50, 4.00}) {
        const sim::ScenarioResult r = sim::tree_separation_probe(w, c1, c2, bound * frac);
        table.add_row({std::to_string(w), Table::num(ratio, 1), Table::num(bound, 2),
                       Table::num(frac, 2), std::to_string(r.analysis.nonlinearizable_ops)});
      }
    }
  }
  table.print(std::cout);

  std::printf("\nBisection for the empirical cutoff (expected: 1.00 * bound):\n");
  for (std::uint32_t w : {8u, 32u}) {
    const double c1 = 1.0;
    const double c2 = 4.0;
    const double bound = theory::finish_start_separation(theory::tree_depth(w), c1, c2);
    double lo = 0.01;
    double hi = 4.0;
    for (int iter = 0; iter < 40; ++iter) {
      const double mid = (lo + hi) / 2.0;
      const bool violates =
          sim::tree_separation_probe(w, c1, c2, bound * mid).analysis.nonlinearizable_ops > 0;
      (violates ? lo : hi) = mid;
    }
    std::printf("  Tree[%u], c2/c1=4: violations stop at %.6f * bound\n", w, (lo + hi) / 2.0);
  }
  return 0;
}
