// Figure 5 of the paper: non-linearizability ratios with F = 25% of the
// processors delayed W cycles after every node, for the width-32 bitonic
// counting network and diffracting tree, n = 4..256, 5000 operations.
#include "fig_common.h"

int main() {
  cnet::bench::run_figure("Figure 5", /*fraction=*/0.25, /*ops=*/5000, /*seed=*/20260704);
  return 0;
}
