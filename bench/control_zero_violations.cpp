// The §5 control runs: "We also tested the linearizability of these
// implementations when F = 0%, 100% and/or W = 0 and no non-linearizable
// operations were detected. Another scenario in which every token waits a
// random number of cycles between 0 and W was also simulated and was
// observed to be completely linearizable."
#include <cstdio>
#include <iostream>

#include "psim/machine.h"
#include "topo/builders.h"
#include "util/table.h"

int main() {
  using namespace cnet;

  const topo::Network bitonic = topo::make_bitonic(32);
  const topo::Network tree = topo::make_counting_tree(32);

  std::printf("Control runs (paper reports zero violations in all of these)\n");
  std::printf("5000 ops per run, width-32 structures\n\n");

  Table table({"structure", "scenario", "n", "violations", "fraction"});
  for (bool diffracting : {false, true}) {
    const topo::Network& net = diffracting ? tree : bitonic;
    for (std::uint32_t n : {4u, 16u, 64u, 128u, 256u}) {
      struct Scenario {
        const char* name;
        double fraction;
        psim::Cycle wait;
        bool random_wait;
      };
      const Scenario scenarios[] = {
          {"F=0%, W=10000", 0.0, 10000, false},
          {"F=100%, W=10000", 1.0, 10000, false},
          {"F=50%, W=0", 0.5, 0, false},
          {"random wait U[0,10000]", 0.0, 10000, true},
      };
      for (const Scenario& scenario : scenarios) {
        psim::MachineParams params;
        params.processors = n;
        params.total_ops = 5000;
        params.delayed_fraction = scenario.fraction;
        params.wait_cycles = scenario.wait;
        params.random_wait = scenario.random_wait;
        params.use_diffraction = diffracting;
        params.seed = 20260704;
        const psim::MachineResult result = psim::run_workload(net, params);
        table.add_row({diffracting ? "dtree" : "bitonic", scenario.name, std::to_string(n),
                       std::to_string(result.analysis.nonlinearizable_ops),
                       Table::num(result.analysis.fraction() * 100.0, 3) + "%"});
      }
    }
  }
  table.print(std::cout);
  return 0;
}
