// Interconnect-contention ablation: the one qualitative gap between our
// Figure 7 reproduction and the paper is that Alewife's bitonic Tog grows
// ~2.5x from n = 4 to 256 while our per-word-only memory model grows ~1.4x.
// Enabling the optional memory-bank model (every access also occupies one of
// `banks` modules) restores exactly that effect: global traffic inflates the
// effective access latency, so Tog rises and the measured c2/c1 falls with
// concurrency — the paper's trend, from the paper's mechanism.
#include <cstdio>
#include <iostream>

#include "psim/machine.h"
#include "topo/builders.h"
#include "util/table.h"

int main() {
  using namespace cnet;

  const topo::Network bitonic = topo::make_bitonic(32);
  std::printf("Bitonic[32], F = 50%%, 5000 ops: Tog and c2/c1 vs n, by interconnect model\n\n");

  struct Model {
    const char* name;
    std::uint32_t banks;
    psim::Cycle bank_occupancy;
  };
  const Model models[] = {
      {"per-word only (default)", 0, 0},
      {"32 banks, occ 4", 32, 4},
      {"16 banks, occ 6", 16, 6},
      {"8 banks, occ 8", 8, 8},
  };

  for (psim::Cycle wait : {100ull, 10000ull}) {
    Table table({"model / W=" + std::to_string(wait), "n=4", "n=16", "n=64", "n=128", "n=256",
                 "Tog growth"});
    for (const Model& model : models) {
      std::vector<std::string> row = {model.name};
      double tog_first = 0.0;
      double tog_last = 0.0;
      for (std::uint32_t n : {4u, 16u, 64u, 128u, 256u}) {
        psim::MachineParams params;
        params.processors = n;
        params.total_ops = 5000;
        params.delayed_fraction = 0.5;
        params.wait_cycles = wait;
        params.seed = 20260704;
        params.mem.banks = model.banks;
        params.mem.bank_occupancy = model.bank_occupancy;
        const psim::MachineResult result = psim::run_workload(bitonic, params);
        row.push_back(Table::num(result.avg_c2_over_c1, 2) + " (tog " +
                      Table::num(result.avg_tog, 0) + ")");
        if (n == 4) tog_first = result.avg_tog;
        tog_last = result.avg_tog;
      }
      row.push_back(Table::num(tog_last / tog_first, 2) + "x");
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf("Paper reference: W=100 ratios 1.45 -> 1.18 (Tog growth ~2.5x over n).\n");
  return 0;
}
