// Link-transport throughput: the BENCH_svc pipeline series
// (scripts/bench_json.sh). BM_LinkPingPong prices one credit-based shm
// link round trip in isolation — a request frag published into one ring,
// echoed back through a second by a peer thread — so the deployment
// numbers below have a transport-only floor to stand on.
// BM_DeployRtPipeline/{1,2,4} is one complete pipelined deployment per
// iteration (fork ingress/counter/record tiles, stream kPipeOps batched
// requests over shm links through the workspace-resident plan, merge and
// check; boot cost included), and BM_DeployRtPipelineSock/4 is the
// ablation twin: the identical 3-stage topology with every hop a
// synchronous per-operation SOCK_SEQPACKET handoff. The gap between the
// two is the isolation tax the links exist to pipeline past
// (docs/EXPERIMENTS.md interprets it against BM_DeployRtTiles).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "deploy/counter_deploy.h"
#include "link/ring.h"
#include "run/backend_spec.h"

namespace {

using namespace cnet;

/// A 64-byte-aligned heap region sized for `o`.
struct Region {
  std::unique_ptr<std::byte[]> store;
  void* mem = nullptr;
  std::uint64_t size = 0;

  explicit Region(const link::RingOptions& o) {
    size = link::Ring::footprint(o);
    store.reset(new std::byte[size + link::Ring::align()]);
    const auto raw = reinterpret_cast<std::uintptr_t>(store.get());
    mem = reinterpret_cast<void*>((raw + link::Ring::align() - 1) &
                                  ~(link::Ring::align() - 1));
  }
};

/// One full round trip per iteration: publish a 16-byte frag into the
/// request ring, an echo thread reflects it into the response ring, drain
/// it back. items/s = round trips; the deployment's per-request link cost
/// is two of these legs minus the pipelining the real topology overlaps.
void BM_LinkPingPong(benchmark::State& state) {
  link::RingOptions o;
  o.depth = 128;
  o.burst = 32;
  o.mtu = 64;
  Region req_mem(o), res_mem(o);
  link::Ring req, res;
  std::string error;
  if (!link::Ring::create(req_mem.mem, req_mem.size, o, &req, &error) ||
      !link::Ring::create(res_mem.mem, res_mem.size, o, &res, &error)) {
    state.SkipWithError(error.c_str());
    return;
  }

  std::thread echo([&req, &res] {
    link::Consumer c = req.consumer(0);
    std::uint64_t buf[8];
    while (true) {
      link::Frag meta;
      const auto st = c.read(&meta, buf, sizeof(buf));
      if (st == link::Consumer::Poll::kEmpty) {
        std::this_thread::yield();
        continue;
      }
      if (st != link::Consumer::Poll::kFrag) continue;
      c.advance();
      if (meta.ctl != 0) return;  // stop frag
      res.send(meta.sig, buf, meta.sz, 0, nullptr);
    }
  });

  link::Consumer back = res.consumer(0);
  std::uint64_t payload[2] = {0, 0};
  std::uint64_t buf[8];
  std::uint64_t seq = 0;
  for (auto _ : state) {
    payload[0] = seq;
    req.send(seq, payload, sizeof(payload), 0, nullptr);
    link::Frag meta;
    while (back.read(&meta, buf, sizeof(buf)) != link::Consumer::Poll::kFrag) {
      std::this_thread::yield();
    }
    back.advance();
    benchmark::DoNotOptimize(buf[0]);
    ++seq;
  }
  req.send(0, nullptr, 0, /*ctl=*/1, nullptr);
  echo.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinkPingPong)->UseRealTime();

// --- pipelined deployment vs the per-op socketpair ablation -----------------

constexpr std::uint64_t kPipeOps = 100000;
constexpr std::uint32_t kPipeBatch = 16;

deploy::DeployOptions pipeline_options(std::uint32_t streams) {
  deploy::DeployOptions options;
  options.spec = run::parse_spec_or_die("rt:bitonic:8?threads=64&ws=bench-pipe");
  options.tiles = streams;
  options.threads_per_tile = 1;
  options.pipeline = true;
  options.total_ops = kPipeOps;
  options.batch = kPipeBatch;
  return options;
}

void run_pipeline_body(benchmark::State& state, const deploy::DeployOptions& options) {
  for (auto _ : state) {
    const deploy::DeployReport report = deploy::run_pipeline_deployment(options);
    if (!report.ok) {
      state.SkipWithError(report.error.empty() ? report.counting_message.c_str()
                                               : report.error.c_str());
      return;
    }
    benchmark::DoNotOptimize(report.ops_recorded);
  }
  state.SetItemsProcessed(state.iterations() * kPipeOps);
}

/// One full pipelined deployment per iteration: ingress tiles batch
/// requests into shm links, the counter tile drains them through the
/// shared plan, the record tile commits histories. Boot cost included,
/// exactly like BM_DeployRtTiles.
void BM_DeployRtPipeline(benchmark::State& state) {
  run_pipeline_body(state, pipeline_options(static_cast<std::uint32_t>(state.range(0))));
}
BENCHMARK(BM_DeployRtPipeline)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/// The ablation: same tiles, same plan, same record/check path, but every
/// request and response is a synchronous per-op SOCK_SEQPACKET message —
/// the textbook "IPC per operation" shape the links replace.
void BM_DeployRtPipelineSock(benchmark::State& state) {
  deploy::DeployOptions options =
      pipeline_options(static_cast<std::uint32_t>(state.range(0)));
  options.transport = deploy::DeployOptions::PipeTransport::kSocketPair;
  run_pipeline_body(state, options);
}
BENCHMARK(BM_DeployRtPipelineSock)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
