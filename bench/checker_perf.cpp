// Throughput of the Def 2.4 analysis itself: the offline O(n log n) sweep
// and the bounded-memory windowed checker, over realistic histories.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "lin/checker.h"
#include "util/rng.h"

namespace {

using namespace cnet;

lin::History make_history(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  lin::History h;
  h.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.unit();
    const double dur = rng.unit() * 8.0;
    const auto value =
        static_cast<std::uint64_t>(std::max(0.0, t + (rng.unit() - 0.5) * 20.0));
    h.push_back(lin::Operation{t, t + dur, value, 0});
  }
  return h;
}

void BM_OfflineCheck(benchmark::State& state) {
  const lin::History h = make_history(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lin::check(h).nonlinearizable_ops);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OfflineCheck)->Range(1 << 10, 1 << 20);

void BM_WindowedCheck(benchmark::State& state) {
  lin::History h = make_history(static_cast<std::size_t>(state.range(0)), 42);
  std::sort(h.begin(), h.end(),
            [](const lin::Operation& a, const lin::Operation& b) { return a.end < b.end; });
  for (auto _ : state) {
    lin::WindowedChecker checker(10.0);
    for (const auto& op : h) checker.add(op);
    checker.finish();
    benchmark::DoNotOptimize(checker.nonlinearizable_ops());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WindowedCheck)->Range(1 << 10, 1 << 18);

void BM_ValuesFormRange(benchmark::State& state) {
  lin::History h;
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) {
    h.push_back(lin::Operation{0.0, 1.0, (i * 2654435761u) % n, 0});
  }
  // Not actually a range in general; we only measure the scan cost.
  std::string msg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lin::values_form_range(h, &msg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ValuesFormRange)->Range(1 << 10, 1 << 18);

}  // namespace

BENCHMARK_MAIN();
