// Ablation for Cor 3.9: sweep the c2/c1 ratio under random (non-adversarial)
// timing and measure the non-linearizable fraction per topology. Below 2 the
// theory guarantees zero; above 2 violations are *constructible* (§4) but —
// the paper's central observation — random timing variation alone almost
// never produces them.
#include <cstdio>
#include <iostream>

#include "sim/scenarios.h"
#include "topo/builders.h"
#include "util/table.h"

int main() {
  using namespace cnet;

  std::printf("Cor 3.9 sweep: random executions, 4000 tokens, Poisson arrivals\n");
  std::printf("(theory: c2/c1 <= 2 -> provably zero; > 2 -> only adversarially reachable)\n\n");

  const topo::Network bitonic = topo::make_bitonic(32);
  const topo::Network periodic = topo::make_periodic(16);
  const topo::Network tree = topo::make_counting_tree(32);

  Table table({"network", "depth", "c2/c1", "violations", "fraction", "guaranteed"});
  for (const topo::Network* net : {&bitonic, &periodic, &tree}) {
    for (double ratio : {1.0, 1.5, 2.0, 2.5, 4.0, 8.0, 16.0}) {
      std::uint64_t violations = 0;
      const int seeds = 5;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        sim::RandomExecutionParams params;
        params.tokens = 4000;
        params.c1 = 1.0;
        params.c2 = ratio;
        params.mean_interarrival = 0.05;
        params.seed = seed;
        violations += sim::random_execution(*net, params).analysis.nonlinearizable_ops;
      }
      table.add_row({net->name(), std::to_string(net->depth()), Table::num(ratio, 1),
                     std::to_string(violations),
                     Table::num(100.0 * static_cast<double>(violations) / (4000.0 * seeds), 3) +
                         "%",
                     ratio <= 2.0 ? "yes (Cor 3.9)" : "no"});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nNote: zero above the threshold is the paper's point — worst-case schedules\n"
      "exist (see theory_scenarios) but do not arise from unbiased random timing.\n");
  return 0;
}
