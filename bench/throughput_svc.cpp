// Service throughput over real loopback TCP: the BENCH_svc series
// (scripts/bench_json.sh). The batched/unbatched pairs are the ablation the
// svc layer exists for — the identical epoll loop, protocol, and client
// pattern, differing only in whether one wake's requests are issued against
// the backend in bulk (one next_batch per chunk on rt, one pooled burst of
// mailbox sends on mp) or one at a time.
//
// Each benchmark thread is one TCP connection running a pipelined window:
// per iteration it sends kWindow requests back-to-back, then drains the
// kWindow responses. With 8 connections the server's wakes coalesce up to
// 8 x kWindow requests, which is exactly the boundary the batching
// amortizes. items/s counts individual counting operations; p99_us is the
// per-connection p99 of the full window round trip (averaged across
// connections).
//
// The batched/unbatched pairs pin loops=1 — the historical single-loop
// configuration, so the series stays comparable across revisions — while
// BM_SvcRtLoops/{1,2,4,8} is the event-loop scaling series: the same 8
// pipelined connections spread by SO_REUSEPORT flow hash across N loops
// (docs/EXPERIMENTS.md interprets the shape; the knee sits at the
// machine's core count, so a 1-core runner shows a flat series).
// BM_DeployRtTiles/{1,2,4} is the cross-process series: one complete
// multi-process deployment per iteration — fork the worker tiles, count
// kDeployOps through the workspace-resident plan, merge and check — against
// BM_DeployRtInProc/{2,4,8}, the same plan and op count driven by the same
// total number of plain threads in one process. The gap between the two is
// the price of process isolation (fork/boot, shm attach, the commit-after-
// record history discipline); docs/EXPERIMENTS.md interprets it.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "deploy/counter_deploy.h"
#include "rt/network_counter.h"
#include "run/backend.h"
#include "run/workload.h"
#include "svc/client.h"
#include "svc/server.h"
#include "topo/builders.h"

namespace {

using namespace cnet;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kWindow = 8;  ///< pipelined requests per iteration

std::unique_ptr<run::CountingBackend> g_backend;
std::unique_ptr<svc::Server> g_server;

void setup_server(const std::string& spec_text, bool batching, std::uint32_t loops) {
  g_backend = run::make_backend(run::parse_spec_or_die(spec_text));
  svc::ServerOptions options;
  options.batching = batching;
  options.loops = loops;
  g_server = std::make_unique<svc::Server>(*g_backend, options);
  std::string error;
  if (!g_server->start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    std::abort();
  }
}

void teardown_server(const benchmark::State&) {
  g_server.reset();
  g_backend.reset();
}

void setup_rt_batched(const benchmark::State&) { setup_server("rt:bitonic:8", true, 1); }
void setup_rt_unbatched(const benchmark::State&) { setup_server("rt:bitonic:8", false, 1); }
void setup_mp_batched(const benchmark::State&) {
  setup_server("mp:tree:8?actors=2", true, 1);
}
void setup_mp_unbatched(const benchmark::State&) {
  setup_server("mp:tree:8?actors=2", false, 1);
}

/// The loops-scaling setup: state.range(0) event loops over an rt backend
/// whose thread-id space (threads=64) slices evenly for every point in the
/// series.
void setup_rt_loops(const benchmark::State& state) {
  setup_server("rt:bitonic:8?threads=64", true,
               static_cast<std::uint32_t>(state.range(0)));
}

double percentile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  std::sort(sorted->begin(), sorted->end());
  const auto at = static_cast<std::size_t>(q * static_cast<double>(sorted->size() - 1));
  return (*sorted)[at];
}

void run_window_body(benchmark::State& state) {
  svc::Client client;
  std::string error;
  if (!client.connect("127.0.0.1", g_server->port(), &error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  std::vector<double> window_ns;
  std::uint64_t id = static_cast<std::uint64_t>(state.thread_index()) << 40;
  svc::Response response;
  for (auto _ : state) {
    const Clock::time_point t0 = Clock::now();
    for (std::uint32_t i = 0; i < kWindow; ++i) client.queue_count(id++);
    if (!client.flush(&error)) {
      state.SkipWithError(error.c_str());
      return;
    }
    for (std::uint32_t i = 0; i < kWindow; ++i) {
      if (!client.recv_response(&response, &error)) {
        state.SkipWithError(error.c_str());
        return;
      }
      if (response.status != svc::Status::kOk) {
        state.SkipWithError("non-ok response");
        return;
      }
    }
    window_ns.push_back(std::chrono::duration<double, std::nano>(Clock::now() - t0).count());
  }
  state.SetItemsProcessed(state.iterations() * kWindow);
  state.counters["p99_us"] =
      benchmark::Counter(percentile(&window_ns, 0.99) / 1e3, benchmark::Counter::kAvgThreads);
}

void BM_SvcRtBatched(benchmark::State& state) { run_window_body(state); }
BENCHMARK(BM_SvcRtBatched)
    ->Setup(setup_rt_batched)
    ->Teardown(teardown_server)
    ->Threads(8)
    ->UseRealTime();

void BM_SvcRtUnbatched(benchmark::State& state) { run_window_body(state); }
BENCHMARK(BM_SvcRtUnbatched)
    ->Setup(setup_rt_unbatched)
    ->Teardown(teardown_server)
    ->Threads(8)
    ->UseRealTime();

void BM_SvcMpBatched(benchmark::State& state) { run_window_body(state); }
BENCHMARK(BM_SvcMpBatched)
    ->Setup(setup_mp_batched)
    ->Teardown(teardown_server)
    ->Threads(8)
    ->UseRealTime();

void BM_SvcMpUnbatched(benchmark::State& state) { run_window_body(state); }
BENCHMARK(BM_SvcMpUnbatched)
    ->Setup(setup_mp_unbatched)
    ->Teardown(teardown_server)
    ->Threads(8)
    ->UseRealTime();

void BM_SvcRtLoops(benchmark::State& state) { run_window_body(state); }
BENCHMARK(BM_SvcRtLoops)
    ->Setup(setup_rt_loops)
    ->Teardown(teardown_server)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Threads(8)
    ->UseRealTime();

// --- cross-process deployment vs in-process threads ------------------------

constexpr std::uint64_t kDeployOps = 100000;
constexpr std::uint32_t kDeployBatch = 16;
constexpr std::uint32_t kThreadsPerTile = 2;

/// One full deployment per iteration: fork tiles, count kDeployOps through
/// the workspace-resident plan, merge and check. Boot cost is part of the
/// measurement — deployments that cannot amortize their fork/attach cost
/// over the run should look expensive here.
void BM_DeployRtTiles(benchmark::State& state) {
  deploy::DeployOptions options;
  options.spec = run::parse_spec_or_die("rt:bitonic:8?threads=64&ws=bench-deploy");
  options.tiles = static_cast<std::uint32_t>(state.range(0));
  options.threads_per_tile = kThreadsPerTile;
  options.total_ops = kDeployOps;
  options.batch = kDeployBatch;
  for (auto _ : state) {
    const deploy::DeployReport report = deploy::run_counter_deployment(options);
    if (!report.ok) {
      state.SkipWithError(report.error.empty() ? report.counting_message.c_str()
                                               : report.error.c_str());
      return;
    }
    benchmark::DoNotOptimize(report.ops_recorded);
  }
  state.SetItemsProcessed(state.iterations() * kDeployOps);
}
BENCHMARK(BM_DeployRtTiles)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/// The in-process twin: the same plan, op count, and batch size, driven by
/// Arg(0) plain threads in this process (== tiles x threads_per_tile of the
/// matching BM_DeployRtTiles point). No fork, no shm, no history records —
/// the ceiling the deployment pays isolation against.
void BM_DeployRtInProc(benchmark::State& state) {
  const auto n_threads = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    rt::NetworkCounter counter(topo::make_bitonic(8));
    const std::vector<std::uint64_t> quotas = run::issuer_quotas(kDeployOps, n_threads);
    std::vector<std::jthread> threads;
    threads.reserve(n_threads);
    for (std::uint32_t t = 0; t < n_threads; ++t) {
      threads.emplace_back([&counter, quota = quotas[t], t] {
        std::uint64_t values[kDeployBatch];
        for (std::uint64_t done = 0; done < quota;) {
          const auto n = static_cast<std::uint32_t>(
              std::min<std::uint64_t>(kDeployBatch, quota - done));
          counter.next_batch(t, t % counter.network().input_width(),
                             std::span<std::uint64_t>(values, n));
          done += n;
        }
      });
    }
    threads.clear();  // join
    benchmark::DoNotOptimize(counter.issued());
  }
  state.SetItemsProcessed(state.iterations() * kDeployOps);
}
BENCHMARK(BM_DeployRtInProc)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
