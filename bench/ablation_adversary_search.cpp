// How hard is it to *stumble into* a violation above the c2/c1 = 2
// threshold? §4 proves violations are constructible there, and §5 observes
// that benign workloads rarely produce them. This ablation quantifies the
// gap with a randomized adversary of increasing strength: each trial runs a
// random execution in which every token independently flips a biased coin to
// move at pace c1 or pace c2 on each link (a "bimodal" adversary, much more
// hostile than uniform delays), and we measure how often any violation
// appears as a function of the ratio and the slow-link probability.
#include <cstdio>
#include <iostream>

#include "lin/checker.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "util/table.h"

namespace {

using namespace cnet;

/// Every link independently: pace c2 with probability p, else c1.
class BimodalDelay final : public sim::DelayModel {
 public:
  BimodalDelay(double c1, double c2, double p_slow) : c1_(c1), c2_(c2), p_slow_(p_slow) {}
  double link_delay(sim::TokenId, std::uint32_t, Rng& rng) override {
    return rng.chance(p_slow_) ? c2_ : c1_;
  }

 private:
  double c1_;
  double c2_;
  double p_slow_;
};

}  // namespace

int main() {
  using namespace cnet;

  std::printf("Randomized bimodal adversary: 50 trials x 800 tokens per cell;\n");
  std::printf("cell = %%trials with >= 1 violation / mean violating fraction\n\n");

  for (const char* kind : {"tree", "bitonic"}) {
    const bool is_tree = std::string(kind) == "tree";
    const topo::Network net =
        is_tree ? topo::make_counting_tree(32) : topo::make_bitonic(32);
    std::vector<std::string> header = {net.name() + "  c2/c1 \\ p(slow)"};
    const std::vector<double> probs = {0.01, 0.05, 0.25, 0.5};
    for (double p : probs) header.push_back(Table::num(p, 2));
    Table table(header);
    for (double ratio : {1.5, 2.0, 3.0, 6.0, 12.0}) {
      std::vector<std::string> row = {Table::num(ratio, 1)};
      for (double p : probs) {
        int trials_with_violation = 0;
        double fraction_sum = 0.0;
        const int trials = 50;
        for (int trial = 0; trial < trials; ++trial) {
          BimodalDelay delays(1.0, ratio, p);
          sim::Simulator simulator(net, delays, 1000 + trial);
          Rng arrivals(trial);
          double t = 0.0;
          for (int i = 0; i < 800; ++i) {
            simulator.inject(static_cast<std::uint32_t>(i) % net.input_width(), t);
            t += arrivals.unit() * 0.1;
          }
          simulator.run();
          const lin::CheckResult analysis = lin::check(simulator.history());
          trials_with_violation += !analysis.linearizable();
          fraction_sum += analysis.fraction();
        }
        row.push_back(Table::num(100.0 * trials_with_violation / 50.0, 0) + "% / " +
                      Table::num(100.0 * fraction_sum / 50.0, 2) + "%");
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Reading: below ratio 2 everything is provably clean (Cor 3.9). Above it,\n"
      "violations need both a large ratio and enough slow links to matter — the\n"
      "quantitative backing for \"practically linearizable\".\n");
  return 0;
}
