// Shared driver for the §5 figure benches: runs the paper's workload grid
// (structure x n x W) through the unified run:: harness and renders the
// series the paper plots. Figures 5/6 differ only in F.
//
// All backend construction and workload generation lives in src/run; this
// header only owns the grid axes and the table/CSV rendering.
#pragma once

#include <cstdio>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "psim/machine.h"
#include "run/backend.h"
#include "run/runner.h"
#include "util/table.h"

namespace cnet::bench {

// Namespace-scope constants instead of statics inside inline functions:
// every TU that included the old accessors ran a guarded initializer on
// first call, and any static-init-order consumer saw an empty axis.
inline constexpr std::uint32_t kConcurrencyAxis[] = {4, 16, 64, 128, 256};
inline constexpr psim::Cycle kWaitAxis[] = {100, 1000, 10000, 100000};

inline std::span<const std::uint32_t> concurrency_axis() { return kConcurrencyAxis; }
inline std::span<const psim::Cycle> wait_axis() { return kWaitAxis; }

struct CellResult {
  double nonlinearizable_fraction = 0.0;
  double avg_tog = 0.0;
  double avg_c2_over_c1 = 0.0;
};

inline CellResult run_cell(bool diffracting, std::uint32_t n, psim::Cycle wait, double fraction,
                           std::uint64_t ops, std::uint64_t seed) {
  const std::unique_ptr<run::CountingBackend> backend =
      run::make_backend(run::parse_spec_or_die(
          diffracting ? "psim:tree:32?diffraction=on" : "psim:bitonic:32"));
  run::Workload workload;
  workload.threads = n;
  workload.total_ops = ops;
  workload.delayed_fraction = fraction;
  workload.wait = wait;
  workload.seed = seed;
  run::Runner runner;
  const run::RunReport report = runner.run(*backend, workload);
  return CellResult{report.analysis.fraction(), report.avg_tog, report.avg_c2_over_c1};
}

/// The full figure grid, indexed [diffracting][wait index][n index].
using Grid = std::vector<std::vector<std::vector<CellResult>>>;

inline Grid run_grid(double fraction, std::uint64_t ops, std::uint64_t seed) {
  Grid grid(2);
  for (int diffracting = 0; diffracting < 2; ++diffracting) {
    for (auto wait : wait_axis()) {
      auto& row = grid[diffracting].emplace_back();
      for (auto n : concurrency_axis()) {
        row.push_back(run_cell(diffracting != 0, n, wait, fraction, ops, seed));
      }
    }
  }
  return grid;
}

/// Renders one figure (fixed F): the non-linearizability-ratio series the
/// paper plots, as a table (rows = W, columns = n) per structure, plus the
/// same data as CSV for replotting.
inline void run_figure(const std::string& figure, double fraction, std::uint64_t ops,
                       std::uint64_t seed) {
  std::printf("%s: non-linearizability ratio, F=%.0f%% delayed processors,\n", figure.c_str(),
              fraction * 100.0);
  std::printf("width-32 structures, %llu operations per cell (paper: 5000), seed %llu\n\n",
              static_cast<unsigned long long>(ops), static_cast<unsigned long long>(seed));

  const Grid grid = run_grid(fraction, ops, seed);

  for (int diffracting = 0; diffracting < 2; ++diffracting) {
    std::vector<std::string> header = {diffracting != 0 ? "dtree W\\n" : "bitonic W\\n"};
    for (auto n : concurrency_axis()) header.push_back("n=" + std::to_string(n));
    Table table(header);
    for (std::size_t wi = 0; wi < wait_axis().size(); ++wi) {
      std::vector<std::string> row = {std::to_string(wait_axis()[wi])};
      for (std::size_t ni = 0; ni < concurrency_axis().size(); ++ni) {
        row.push_back(
            Table::num(grid[diffracting][wi][ni].nonlinearizable_fraction * 100.0, 2) + "%");
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::printf("\n");
  }

  std::printf("CSV: structure,W,n,nonlin_fraction,avg_tog,avg_c2_over_c1\n");
  for (int diffracting = 0; diffracting < 2; ++diffracting) {
    for (std::size_t wi = 0; wi < wait_axis().size(); ++wi) {
      for (std::size_t ni = 0; ni < concurrency_axis().size(); ++ni) {
        const CellResult& cell = grid[diffracting][wi][ni];
        std::printf("%s,%llu,%u,%.5f,%.1f,%.2f\n", diffracting != 0 ? "dtree" : "bitonic",
                    static_cast<unsigned long long>(wait_axis()[wi]), concurrency_axis()[ni],
                    cell.nonlinearizable_fraction, cell.avg_tog, cell.avg_c2_over_c1);
      }
    }
  }
}

}  // namespace cnet::bench
