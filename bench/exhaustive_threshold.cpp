// Exhaustive certification of the c2/c1 = 2 threshold on small instances:
// for each network and ratio, enumerate EVERY schedule of a small token set
// (entry lattice x per-link {c1,c2} choices) and report whether any violates
// Def 2.4. Below/at 2 the answer must be — and is — "none"; above 2 a
// witness appears as soon as the lattice resolves the violation window,
// and the witness is printed.
#include <cstdio>
#include <iostream>

#include "sim/exhaustive.h"
#include "topo/builders.h"
#include "util/table.h"

int main() {
  using namespace cnet;

  struct Instance {
    const char* name;
    topo::Network net;
    std::uint32_t tokens;
    std::uint32_t slots;
    double step;
  };
  Instance instances[] = {
      {"Balancer[2]", topo::make_balancer(2), 3, 12, 0.25},
      {"Tree[4]", topo::make_counting_tree(4), 4, 8, 0.5},
      {"Bitonic[2]", topo::make_bitonic(2), 3, 12, 0.25},
      {"Bitonic[4]", topo::make_bitonic(4), 4, 4, 1.0},
  };

  Table table({"network", "depth", "tokens", "c2/c1", "schedules", "violating schedule?"});
  for (Instance& instance : instances) {
    for (double ratio : {1.5, 2.0, 2.25, 2.5, 4.0}) {
      sim::ExhaustiveParams params;
      params.tokens = instance.tokens;
      params.c1 = 1.0;
      params.c2 = ratio;
      params.entry_slots = instance.slots;
      params.entry_step = instance.step;
      const sim::ExhaustiveResult result = sim::exhaustive_search(instance.net, params);
      table.add_row({instance.name, std::to_string(instance.net.depth()),
                     std::to_string(instance.tokens), Table::num(ratio, 2),
                     std::to_string(result.schedules_checked),
                     result.violation_found ? "FOUND" : "none"});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nNotes: certification at ratio <= 2 is Cor 3.9, verified schedule-by-schedule.\n"
      "Refutation thresholds sit above 2 when the token budget is below the §4\n"
      "constructions' needs (Thm 4.1 uses 2^h+1 tokens, Thm 4.3 uses w+3): Tree[4]\n"
      "flips between 2.5 and 4.0 with 4 tokens, and 4 tokens never suffice for\n"
      "Bitonic[4] (w+3 = 7) — the adversary's power is part of the theorem.\n");

  // Print one witness in full, as a machine-found §1-style counterexample.
  sim::ExhaustiveParams params;
  params.tokens = 3;
  params.c2 = 2.5;
  params.entry_slots = 12;
  params.entry_step = 0.25;
  const topo::Network balancer = topo::make_balancer(2);
  const sim::ExhaustiveResult result = sim::exhaustive_search(balancer, params);
  if (result.violation_found) {
    std::printf("\nMachine-found counterexample on Balancer[2] at c2/c1 = 2.5:\n");
    for (std::size_t t = 0; t < result.witness.tokens.size(); ++t) {
      const auto& token = result.witness.tokens[t];
      std::printf("  T%zu: enters x%u at %.2f, link delay %.2f, exits %.2f with value %llu\n",
                  t, token.input, token.entry, token.link_delays[0], token.exit,
                  static_cast<unsigned long long>(token.value));
    }
    std::printf("(compare with the hand-built example of the paper's Section 1)\n");
  }
  return 0;
}
