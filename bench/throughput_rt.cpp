// Real-thread throughput: the scalability claim that motivates counting
// networks (§1). Compares a central atomic fetch_add counter, an MCS-locked
// counter, and the counting-network counters (bitonic lock-free, bitonic
// MCS-balancer, periodic, diffracting tree) across thread counts.
//
// google-benchmark's ->Threads(n) runs the benchmark body on n threads
// concurrently; counters are rebuilt per run via setup in the fixture-less
// pattern below (state.thread_index() gives the dense thread id the
// NetworkCounter API needs).
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>

#include "rt/diffracting_tree.h"
#include "rt/mcs_lock.h"
#include "rt/network_counter.h"
#include "topo/builders.h"

namespace {

using namespace cnet;

// --- baselines ---------------------------------------------------------

std::atomic<std::uint64_t> g_atomic_counter{0};

void BM_CentralAtomic(benchmark::State& state) {
  if (state.thread_index() == 0) g_atomic_counter.store(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_atomic_counter.fetch_add(1, std::memory_order_acq_rel));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CentralAtomic)->ThreadRange(1, 8)->UseRealTime();

struct LockedCounter {
  rt::McsLock lock;
  std::uint64_t value = 0;
  std::uint64_t next() {
    rt::McsLock::Guard guard(lock);
    return value++;
  }
};
LockedCounter g_locked_counter;

void BM_McsLockedCounter(benchmark::State& state) {
  if (state.thread_index() == 0) g_locked_counter.value = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_locked_counter.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_McsLockedCounter)->ThreadRange(1, 8)->UseRealTime();

// --- counting networks --------------------------------------------------

std::unique_ptr<rt::NetworkCounter> g_network_counter;
std::unique_ptr<rt::DiffractingTree> g_tree;

void BM_BitonicFetchAdd(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_network_counter = std::make_unique<rt::NetworkCounter>(
        topo::make_bitonic(static_cast<std::uint32_t>(state.range(0))));
  }
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_network_counter->next(tid));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitonicFetchAdd)->Arg(8)->Arg(32)->ThreadRange(1, 8)->UseRealTime();

void BM_BitonicMcsBalancers(benchmark::State& state) {
  if (state.thread_index() == 0) {
    rt::CounterOptions options;
    options.mode = rt::BalancerMode::kMcsLocked;
    g_network_counter = std::make_unique<rt::NetworkCounter>(
        topo::make_bitonic(static_cast<std::uint32_t>(state.range(0))), options);
  }
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_network_counter->next(tid));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitonicMcsBalancers)->Arg(32)->ThreadRange(1, 8)->UseRealTime();

void BM_Periodic(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_network_counter = std::make_unique<rt::NetworkCounter>(
        topo::make_periodic(static_cast<std::uint32_t>(state.range(0))));
  }
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_network_counter->next(tid));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Periodic)->Arg(16)->ThreadRange(1, 8)->UseRealTime();

void BM_DiffractingTree(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_tree = std::make_unique<rt::DiffractingTree>(
        static_cast<std::uint32_t>(state.range(0)));
  }
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_tree->next(tid));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiffractingTree)->Arg(32)->ThreadRange(1, 8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
