// Real-thread throughput: the scalability claim that motivates counting
// networks (§1). Compares a central atomic fetch_add counter, an MCS-locked
// counter, and the counting-network counters across thread counts — with the
// network counters run through both executors (the compiled RoutingPlan and
// the original graph walk) plus the batched plan API, so the plan's speedup
// is measurable inside one binary.
//
// google-benchmark's ->Threads(n) runs the benchmark body on n threads
// concurrently. Shared state is (re)built in ->Setup() hooks, which the
// framework invokes on the main thread before any benchmark thread starts —
// rebuilding inside the body under `state.thread_index() == 0` raced with
// non-zero threads already entering the measurement loop.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <vector>

#include "rt/diffracting_tree.h"
#include "rt/mcs_lock.h"
#include "rt/network_counter.h"
#include "topo/builders.h"

namespace {

using namespace cnet;

// --- baselines ---------------------------------------------------------

std::atomic<std::uint64_t> g_atomic_counter{0};

void setup_central_atomic(const benchmark::State&) { g_atomic_counter.store(0); }

void BM_CentralAtomic(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_atomic_counter.fetch_add(1, std::memory_order_acq_rel));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CentralAtomic)->Setup(setup_central_atomic)->ThreadRange(1, 8)->UseRealTime();

struct LockedCounter {
  rt::McsLock lock;
  std::uint64_t value = 0;
  std::uint64_t next() {
    rt::McsLock::Guard guard(lock);
    return value++;
  }
  void reset() {
    rt::McsLock::Guard guard(lock);
    value = 0;
  }
};
LockedCounter g_locked_counter;

void setup_mcs_locked(const benchmark::State&) { g_locked_counter.reset(); }

void BM_McsLockedCounter(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_locked_counter.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_McsLockedCounter)->Setup(setup_mcs_locked)->ThreadRange(1, 8)->UseRealTime();

// --- counting networks --------------------------------------------------

std::unique_ptr<rt::NetworkCounter> g_network_counter;
std::unique_ptr<rt::DiffractingTree> g_tree;

void teardown_network_counter(const benchmark::State&) { g_network_counter.reset(); }
void teardown_tree(const benchmark::State&) { g_tree.reset(); }

rt::CounterOptions engine_options(rt::ExecutionEngine engine) {
  rt::CounterOptions options;
  options.engine = engine;
  return options;
}

void setup_bitonic_plan(const benchmark::State& state) {
  g_network_counter = std::make_unique<rt::NetworkCounter>(
      topo::make_bitonic(static_cast<std::uint32_t>(state.range(0))),
      engine_options(rt::ExecutionEngine::kCompiledPlan));
}

void setup_bitonic_graph_walk(const benchmark::State& state) {
  g_network_counter = std::make_unique<rt::NetworkCounter>(
      topo::make_bitonic(static_cast<std::uint32_t>(state.range(0))),
      engine_options(rt::ExecutionEngine::kGraphWalk));
}

void run_single_token_body(benchmark::State& state) {
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_network_counter->next(tid));
  }
  state.SetItemsProcessed(state.iterations());
}

/// Compiled-plan executor (the production default).
void BM_BitonicFetchAdd(benchmark::State& state) { run_single_token_body(state); }
BENCHMARK(BM_BitonicFetchAdd)
    ->Setup(setup_bitonic_plan)
    ->Teardown(teardown_network_counter)
    ->Arg(8)
    ->Arg(32)
    ->ThreadRange(1, 8)
    ->UseRealTime();

/// The original per-token topo::Network walk, kept benchmarkable as the
/// before/after reference for the plan.
void BM_BitonicGraphWalk(benchmark::State& state) { run_single_token_body(state); }
BENCHMARK(BM_BitonicGraphWalk)
    ->Setup(setup_bitonic_graph_walk)
    ->Teardown(teardown_network_counter)
    ->Arg(8)
    ->Arg(32)
    ->ThreadRange(1, 8)
    ->UseRealTime();

/// Batched plan API: range(1) tokens per next_batch call.
void BM_BitonicFetchAddBatch(benchmark::State& state) {
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  const auto input = tid % g_network_counter->network().input_width();
  std::vector<std::uint64_t> values(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    g_network_counter->next_batch(tid, input, values);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_BitonicFetchAddBatch)
    ->Setup(setup_bitonic_plan)
    ->Teardown(teardown_network_counter)
    ->Args({32, 16})
    ->Args({32, 64})
    ->ThreadRange(1, 8)
    ->UseRealTime();

void setup_bitonic_mcs(const benchmark::State& state) {
  rt::CounterOptions options;
  options.mode = rt::BalancerMode::kMcsLocked;
  g_network_counter = std::make_unique<rt::NetworkCounter>(
      topo::make_bitonic(static_cast<std::uint32_t>(state.range(0))), options);
}

void BM_BitonicMcsBalancers(benchmark::State& state) { run_single_token_body(state); }
BENCHMARK(BM_BitonicMcsBalancers)
    ->Setup(setup_bitonic_mcs)
    ->Teardown(teardown_network_counter)
    ->Arg(32)
    ->ThreadRange(1, 8)
    ->UseRealTime();

void setup_periodic_plan(const benchmark::State& state) {
  g_network_counter = std::make_unique<rt::NetworkCounter>(
      topo::make_periodic(static_cast<std::uint32_t>(state.range(0))));
}

void BM_Periodic(benchmark::State& state) { run_single_token_body(state); }
BENCHMARK(BM_Periodic)
    ->Setup(setup_periodic_plan)
    ->Teardown(teardown_network_counter)
    ->Arg(16)
    ->ThreadRange(1, 8)
    ->UseRealTime();

void setup_tree(const benchmark::State& state) {
  g_tree = std::make_unique<rt::DiffractingTree>(static_cast<std::uint32_t>(state.range(0)));
}

void BM_DiffractingTree(benchmark::State& state) {
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_tree->next(tid));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiffractingTree)
    ->Setup(setup_tree)
    ->Teardown(teardown_tree)
    ->Arg(32)
    ->ThreadRange(1, 8)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
