// Real-thread throughput: the scalability claim that motivates counting
// networks (§1). Compares a central atomic fetch_add counter, an MCS-locked
// counter, and the counting-network counters across thread counts — with the
// network counters run through both executors (the compiled RoutingPlan and
// the original graph walk) plus the batched plan API, so the plan's speedup
// is measurable inside one binary.
//
// google-benchmark's ->Threads(n) runs the benchmark body on n threads
// concurrently. Shared state is (re)built in ->Setup() hooks, which the
// framework invokes on the main thread before any benchmark thread starts —
// rebuilding inside the body under `state.thread_index() == 0` raced with
// non-zero threads already entering the measurement loop.
//
// Every network configuration is a BackendSpec string through the run::
// harness; this file contains no backend construction of its own. The two
// baselines (central atomic, MCS-locked) stay hand-rolled — they are the
// non-network reference points.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "rt/mcs_lock.h"
#include "run/backend.h"

namespace {

using namespace cnet;

// --- baselines ---------------------------------------------------------

std::atomic<std::uint64_t> g_atomic_counter{0};

void setup_central_atomic(const benchmark::State&) { g_atomic_counter.store(0); }

void BM_CentralAtomic(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_atomic_counter.fetch_add(1, std::memory_order_acq_rel));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CentralAtomic)->Setup(setup_central_atomic)->ThreadRange(1, 8)->UseRealTime();

struct LockedCounter {
  rt::McsLock lock;
  std::uint64_t value = 0;
  std::uint64_t next() {
    rt::McsLock::Guard guard(lock);
    return value++;
  }
  void reset() {
    rt::McsLock::Guard guard(lock);
    value = 0;
  }
};
LockedCounter g_locked_counter;

void setup_mcs_locked(const benchmark::State&) { g_locked_counter.reset(); }

void BM_McsLockedCounter(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_locked_counter.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_McsLockedCounter)->Setup(setup_mcs_locked)->ThreadRange(1, 8)->UseRealTime();

// --- counting networks --------------------------------------------------

std::unique_ptr<run::CountingBackend> g_backend;

void teardown_backend(const benchmark::State&) { g_backend.reset(); }

void rebuild_backend(const std::string& spec_text) {
  g_backend = run::make_backend(run::parse_spec_or_die(spec_text));
}

void setup_bitonic_plan(const benchmark::State& state) {
  rebuild_backend("rt:bitonic:" + std::to_string(state.range(0)));
}

void setup_bitonic_graph_walk(const benchmark::State& state) {
  rebuild_backend("rt:bitonic:" + std::to_string(state.range(0)) + "?engine=walk");
}

void setup_bitonic_mcs(const benchmark::State& state) {
  rebuild_backend("rt:bitonic:" + std::to_string(state.range(0)) + "?mcs");
}

void setup_periodic_plan(const benchmark::State& state) {
  rebuild_backend("rt:periodic:" + std::to_string(state.range(0)));
}

void setup_tree(const benchmark::State& state) {
  rebuild_backend("rt:tree:" + std::to_string(state.range(0)) + "?diffraction=on");
}

void run_single_token_body(benchmark::State& state) {
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_backend->count(tid));
  }
  state.SetItemsProcessed(state.iterations());
}

/// Compiled-plan executor (the production default).
void BM_BitonicFetchAdd(benchmark::State& state) { run_single_token_body(state); }
BENCHMARK(BM_BitonicFetchAdd)
    ->Setup(setup_bitonic_plan)
    ->Teardown(teardown_backend)
    ->Arg(8)
    ->Arg(32)
    ->ThreadRange(1, 8)
    ->UseRealTime();

/// The original per-token topo::Network walk, kept benchmarkable as the
/// before/after reference for the plan.
void BM_BitonicGraphWalk(benchmark::State& state) { run_single_token_body(state); }
BENCHMARK(BM_BitonicGraphWalk)
    ->Setup(setup_bitonic_graph_walk)
    ->Teardown(teardown_backend)
    ->Arg(8)
    ->Arg(32)
    ->ThreadRange(1, 8)
    ->UseRealTime();

/// Batched plan API: range(1) tokens per count_batch call.
void BM_BitonicFetchAddBatch(benchmark::State& state) {
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  std::vector<std::uint64_t> values(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    g_backend->count_batch(tid, values);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_BitonicFetchAddBatch)
    ->Setup(setup_bitonic_plan)
    ->Teardown(teardown_backend)
    ->Args({32, 16})
    ->Args({32, 64})
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_BitonicMcsBalancers(benchmark::State& state) { run_single_token_body(state); }
BENCHMARK(BM_BitonicMcsBalancers)
    ->Setup(setup_bitonic_mcs)
    ->Teardown(teardown_backend)
    ->Arg(32)
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_Periodic(benchmark::State& state) { run_single_token_body(state); }
BENCHMARK(BM_Periodic)
    ->Setup(setup_periodic_plan)
    ->Teardown(teardown_backend)
    ->Arg(16)
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_DiffractingTree(benchmark::State& state) { run_single_token_body(state); }
BENCHMARK(BM_DiffractingTree)
    ->Setup(setup_tree)
    ->Teardown(teardown_backend)
    ->Arg(32)
    ->ThreadRange(1, 8)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
