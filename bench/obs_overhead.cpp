// Observability overhead: the cost of docs/OBSERVABILITY.md, measured.
//
// Each benchmark pair runs the same Bitonic[32] compiled-plan workload with
// the metrics sink detached (the PR-1 hot path: one untaken [[unlikely]]
// branch per token) and attached at increasing instrumentation levels:
// default 1/64 sampling, full sampling (every token timed), and full
// sampling plus the trace ring. The deltas are the numbers quoted in
// docs/OBSERVABILITY.md; re-measure with scripts/bench_json.sh after
// touching the rt hot path or the obs recording primitives.
//
// Setup()/Teardown() hooks run on the main thread before/after the
// benchmark threads exist (see throughput_rt.cpp for why the state must not
// be rebuilt inside the body).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "obs/backend_metrics.h"
#include "rt/network_counter.h"
#include "topo/builders.h"

namespace {

using namespace cnet;

std::unique_ptr<obs::CounterMetrics> g_metrics;
std::unique_ptr<rt::NetworkCounter> g_counter;

/// sample_period == 0 means "no metrics attached at all".
void setup_counter(std::uint32_t width, std::uint32_t sample_period, bool trace,
                   rt::ExecutionEngine engine) {
  rt::CounterOptions options;
  options.engine = engine;
  if (sample_period != 0) {
    g_metrics = std::make_unique<obs::CounterMetrics>();
    g_metrics->sample_period = sample_period;
    if (trace) g_metrics->trace.enable();
    options.metrics = g_metrics.get();
  }
  g_counter = std::make_unique<rt::NetworkCounter>(topo::make_bitonic(width), options);
}

void teardown(const benchmark::State&) {
  g_counter.reset();
  g_metrics.reset();
}

void run_single_token_body(benchmark::State& state) {
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_counter->next(tid));
  }
  state.SetItemsProcessed(state.iterations());
}

// --- compiled plan, single tokens ---------------------------------------

void setup_plan_off(const benchmark::State& state) {
  setup_counter(static_cast<std::uint32_t>(state.range(0)), 0, false,
                rt::ExecutionEngine::kCompiledPlan);
}
void setup_plan_sampled(const benchmark::State& state) {
  setup_counter(static_cast<std::uint32_t>(state.range(0)), 64, false,
                rt::ExecutionEngine::kCompiledPlan);
}
void setup_plan_full(const benchmark::State& state) {
  setup_counter(static_cast<std::uint32_t>(state.range(0)), 1, false,
                rt::ExecutionEngine::kCompiledPlan);
}
void setup_plan_traced(const benchmark::State& state) {
  setup_counter(static_cast<std::uint32_t>(state.range(0)), 1, true,
                rt::ExecutionEngine::kCompiledPlan);
}

/// Baseline: metrics pointer null — the uninstrumented PR-1 fast path.
void BM_PlanObsOff(benchmark::State& state) { run_single_token_body(state); }
BENCHMARK(BM_PlanObsOff)
    ->Setup(setup_plan_off)
    ->Teardown(teardown)
    ->Arg(32)
    ->ThreadRange(1, 8)
    ->UseRealTime();

/// Default configuration: counters on every token, clocks on every 64th.
void BM_PlanObsSampled(benchmark::State& state) { run_single_token_body(state); }
BENCHMARK(BM_PlanObsSampled)
    ->Setup(setup_plan_sampled)
    ->Teardown(teardown)
    ->Arg(32)
    ->ThreadRange(1, 8)
    ->UseRealTime();

/// Worst case: every token timed (sample_period = 1), two clock reads and
/// two histogram records per hop/op.
void BM_PlanObsFull(benchmark::State& state) { run_single_token_body(state); }
BENCHMARK(BM_PlanObsFull)
    ->Setup(setup_plan_full)
    ->Teardown(teardown)
    ->Arg(32)
    ->ThreadRange(1, 8)
    ->UseRealTime();

/// Worst case plus the flight recorder: every sampled hop also appends a
/// 32-byte event to the shard's trace ring.
void BM_PlanObsTraced(benchmark::State& state) { run_single_token_body(state); }
BENCHMARK(BM_PlanObsTraced)
    ->Setup(setup_plan_traced)
    ->Teardown(teardown)
    ->Arg(32)
    ->ThreadRange(1, 8)
    ->UseRealTime();

// --- compiled plan, batched ---------------------------------------------

void run_batch_body(benchmark::State& state) {
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  const auto input = tid % g_counter->network().input_width();
  std::vector<std::uint64_t> values(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    g_counter->next_batch(tid, input, values);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}

void BM_PlanBatchObsOff(benchmark::State& state) { run_batch_body(state); }
BENCHMARK(BM_PlanBatchObsOff)
    ->Setup(setup_plan_off)
    ->Teardown(teardown)
    ->Args({32, 64})
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_PlanBatchObsSampled(benchmark::State& state) { run_batch_body(state); }
BENCHMARK(BM_PlanBatchObsSampled)
    ->Setup(setup_plan_sampled)
    ->Teardown(teardown)
    ->Args({32, 64})
    ->ThreadRange(1, 8)
    ->UseRealTime();

// --- graph walk (the fallback executor shares the metrics struct) --------

void setup_walk_off(const benchmark::State& state) {
  setup_counter(static_cast<std::uint32_t>(state.range(0)), 0, false,
                rt::ExecutionEngine::kGraphWalk);
}
void setup_walk_sampled(const benchmark::State& state) {
  setup_counter(static_cast<std::uint32_t>(state.range(0)), 64, false,
                rt::ExecutionEngine::kGraphWalk);
}

void BM_WalkObsOff(benchmark::State& state) { run_single_token_body(state); }
BENCHMARK(BM_WalkObsOff)
    ->Setup(setup_walk_off)
    ->Teardown(teardown)
    ->Arg(32)
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_WalkObsSampled(benchmark::State& state) { run_single_token_body(state); }
BENCHMARK(BM_WalkObsSampled)
    ->Setup(setup_walk_sampled)
    ->Teardown(teardown)
    ->Arg(32)
    ->ThreadRange(1, 8)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
