// Performance of the two simulation engines themselves (google-benchmark):
// events per second for the event-level timing simulator and the coroutine
// multiprocessor, so regressions in the substrates are visible.
#include <benchmark/benchmark.h>

#include "psim/machine.h"
#include "sim/scenarios.h"
#include "sim/simulator.h"
#include "topo/builders.h"

namespace {

using namespace cnet;

void BM_SimRandomExecution(benchmark::State& state) {
  const topo::Network net = topo::make_bitonic(static_cast<std::uint32_t>(state.range(0)));
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::UniformDelay delays(1.0, 3.0);
    sim::Simulator simulator(net, delays, seed++);
    for (int i = 0; i < 1000; ++i) {
      simulator.inject(static_cast<std::uint32_t>(i) % net.input_width(), i * 0.05);
    }
    simulator.run();
    benchmark::DoNotOptimize(simulator.output_counts().data());
    events += 1000ull * (net.depth() + 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = balancer+counter events");
}
BENCHMARK(BM_SimRandomExecution)->Arg(8)->Arg(32);

void BM_PsimWorkload(benchmark::State& state) {
  const topo::Network net = topo::make_bitonic(32);
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    psim::MachineParams params;
    params.processors = static_cast<std::uint32_t>(state.range(0));
    params.total_ops = 2000;
    params.delayed_fraction = 0.25;
    params.wait_cycles = 1000;
    params.seed = seed++;
    const psim::MachineResult result = psim::run_workload(net, params);
    benchmark::DoNotOptimize(result.makespan);
    events += result.events;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = engine events");
}
BENCHMARK(BM_PsimWorkload)->Arg(16)->Arg(128);

void BM_PsimDiffractingWorkload(benchmark::State& state) {
  const topo::Network net = topo::make_counting_tree(32);
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    psim::MachineParams params;
    params.processors = static_cast<std::uint32_t>(state.range(0));
    params.total_ops = 2000;
    params.use_diffraction = true;
    params.seed = seed++;
    const psim::MachineResult result = psim::run_workload(net, params);
    benchmark::DoNotOptimize(result.makespan);
    events += result.events;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = engine events");
}
BENCHMARK(BM_PsimDiffractingWorkload)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
