// Performance of the simulation engines themselves (google-benchmark):
// events per second for the event-level timing simulator and the coroutine
// multiprocessor, so regressions in the substrates are visible — plus a
// head-to-head of the bucketed timing wheel (psim::Engine) against the
// retired binary heap (psim::HeapEngine) on the figure-5-shaped event mix
// (hundreds of processors, short toggle/hop delays interleaved with 100k-
// cycle waits) that every psim figure bench generates.
#include <benchmark/benchmark.h>

#include <vector>

#include "fault/injector.h"
#include "fault/plan.h"
#include "psim/coro.h"
#include "psim/engine.h"
#include "psim/heap_engine.h"
#include "psim/machine.h"
#include "sim/scenarios.h"
#include "sim/simulator.h"
#include "topo/builders.h"

namespace {

using namespace cnet;

// --- wheel vs heap on the fig5-shaped mix -------------------------------

/// One simulated processor of the fig5 workload shape: per network layer a
/// hop, a small toggle-service delay, and (for the delayed F = 25% subset)
/// the W-cycle pause. Pure sleeps — no Memory/MCS machinery — so the bench
/// isolates event-queue cost.
template <class EngineT>
psim::Coro<> fig5_mix_proc(EngineT& engine, std::uint32_t id, std::uint64_t rounds,
                           psim::Cycle wait, bool delayed) {
  constexpr int kLayers = 15;  // Bitonic[32] depth
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (int layer = 0; layer < kLayers; ++layer) {
      co_await engine.sleep(4);
      co_await engine.sleep(1 + ((id + layer + r) & 15));
      if (delayed) co_await engine.sleep(wait);
    }
  }
}

template <class EngineT>
std::uint64_t run_fig5_mix(std::uint32_t procs, psim::Cycle wait, std::uint64_t total_ops) {
  EngineT engine;
  const std::uint64_t rounds = std::max<std::uint64_t>(1, total_ops / procs);
  std::vector<psim::Coro<>> tasks;
  tasks.reserve(procs);
  for (std::uint32_t p = 0; p < procs; ++p) {
    tasks.push_back(fig5_mix_proc(engine, p, rounds, wait, p % 4 == 0));
  }
  for (auto& t : tasks) t.start();
  engine.run();
  return engine.events_processed();
}

template <class EngineT>
void engine_mix_bench(benchmark::State& state) {
  const auto procs = static_cast<std::uint32_t>(state.range(0));
  const auto wait = static_cast<psim::Cycle>(state.range(1));
  std::uint64_t events = 0;
  for (auto _ : state) {
    events += run_fig5_mix<EngineT>(procs, wait, 5000);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = engine events");
}

void BM_EngineWheelFig5Mix(benchmark::State& state) { engine_mix_bench<psim::Engine>(state); }
BENCHMARK(BM_EngineWheelFig5Mix)->Args({256, 100000})->Args({256, 1000})->Args({64, 100000});

void BM_EngineHeapFig5Mix(benchmark::State& state) {
  engine_mix_bench<psim::HeapEngine>(state);
}
BENCHMARK(BM_EngineHeapFig5Mix)->Args({256, 100000})->Args({256, 1000})->Args({64, 100000});

void BM_SimRandomExecution(benchmark::State& state) {
  const topo::Network net = topo::make_bitonic(static_cast<std::uint32_t>(state.range(0)));
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::UniformDelay delays(1.0, 3.0);
    sim::Simulator simulator(net, delays, seed++);
    for (int i = 0; i < 1000; ++i) {
      simulator.inject(static_cast<std::uint32_t>(i) % net.input_width(), i * 0.05);
    }
    simulator.run();
    benchmark::DoNotOptimize(simulator.output_counts().data());
    events += 1000ull * (net.depth() + 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = balancer+counter events");
}
BENCHMARK(BM_SimRandomExecution)->Arg(8)->Arg(32);

void BM_PsimWorkload(benchmark::State& state) {
  const topo::Network net = topo::make_bitonic(32);
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    psim::MachineParams params;
    params.processors = static_cast<std::uint32_t>(state.range(0));
    params.total_ops = 2000;
    params.delayed_fraction = 0.25;
    params.wait_cycles = 1000;
    params.seed = seed++;
    const psim::MachineResult result = psim::run_workload(net, params);
    benchmark::DoNotOptimize(result.makespan);
    events += result.events;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = engine events");
}
BENCHMARK(BM_PsimWorkload)->Arg(16)->Arg(128);

void BM_PsimDiffractingWorkload(benchmark::State& state) {
  const topo::Network net = topo::make_counting_tree(32);
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    psim::MachineParams params;
    params.processors = static_cast<std::uint32_t>(state.range(0));
    params.total_ops = 2000;
    params.use_diffraction = true;
    params.seed = seed++;
    const psim::MachineResult result = psim::run_workload(net, params);
    benchmark::DoNotOptimize(result.makespan);
    events += result.events;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = engine events");
}
BENCHMARK(BM_PsimDiffractingWorkload)->Arg(64);

/// Fault-plan realization cost in the cycle simulator: the same workload
/// with no injector (arg 0) and with an armed stall plan (arg 1) whose
/// debits land as timing-wheel sleeps. The delta is the price of chaos
/// runs in psim — it should be dominated by the extra simulated events,
/// not by the per-hop decision draws.
void BM_PsimStallDebit(benchmark::State& state) {
  const topo::Network net = topo::make_bitonic(32);
  fault::FaultPlan plan;
  fault::parse_fault_plan("stall:0.25:2000,seed:5", &plan, nullptr);
  const bool armed = state.range(0) != 0;
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    fault::Injector injector(plan);
    psim::MachineParams params;
    params.processors = 64;
    params.total_ops = 2000;
    params.seed = seed++;
    params.fault = armed ? &injector : nullptr;
    const psim::MachineResult result = psim::run_workload(net, params);
    benchmark::DoNotOptimize(result.makespan);
    events += result.events;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel(armed ? "armed stall plan" : "no injector");
}
BENCHMARK(BM_PsimStallDebit)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
