// mp count() throughput, lock-free fast path vs. the locked oracle — the
// BENCH_mp series (scripts/bench_json.sh). Every configuration is a
// BackendSpec string through the run:: harness; the benchmark threads are
// the service's clients, the spec's `actors=` workers drain the mailboxes.
//
// The comparison that matters is at high client counts: the locked engine
// pays a global run-queue mutex plus a condvar wake per scheduling step and
// a per-operation heap allocation for its response rendezvous, so client
// threads convoy; the lock-free engine's send is a pooled-node exchange
// plus one run-queue CAS, with wake syscalls only when a worker actually
// sleeps. Same topologies, same worker count, both engines in one binary.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "run/backend.h"

namespace {

using namespace cnet;

std::unique_ptr<run::CountingBackend> g_backend;

void teardown_backend(const benchmark::State&) { g_backend.reset(); }

void rebuild_backend(const std::string& spec_text) {
  g_backend = run::make_backend(run::parse_spec_or_die(spec_text));
}

void setup_bitonic_lockfree(const benchmark::State& state) {
  rebuild_backend("mp:bitonic:" + std::to_string(state.range(0)) + "?actors=2");
}

void setup_bitonic_locked(const benchmark::State& state) {
  rebuild_backend("mp:bitonic:" + std::to_string(state.range(0)) + "?actors=2&engine=locked");
}

void setup_tree_lockfree(const benchmark::State& state) {
  rebuild_backend("mp:tree:" + std::to_string(state.range(0)) + "?actors=2");
}

void setup_tree_locked(const benchmark::State& state) {
  rebuild_backend("mp:tree:" + std::to_string(state.range(0)) + "?actors=2&engine=locked");
}

void run_count_body(benchmark::State& state) {
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_backend->count(tid));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_MpLockFree(benchmark::State& state) { run_count_body(state); }
BENCHMARK(BM_MpLockFree)
    ->Setup(setup_bitonic_lockfree)
    ->Teardown(teardown_backend)
    ->Arg(32)
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_MpLocked(benchmark::State& state) { run_count_body(state); }
BENCHMARK(BM_MpLocked)
    ->Setup(setup_bitonic_locked)
    ->Teardown(teardown_backend)
    ->Arg(32)
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_MpTreeLockFree(benchmark::State& state) { run_count_body(state); }
BENCHMARK(BM_MpTreeLockFree)
    ->Setup(setup_tree_lockfree)
    ->Teardown(teardown_backend)
    ->Arg(16)
    ->ThreadRange(1, 8)
    ->UseRealTime();

void BM_MpTreeLocked(benchmark::State& state) { run_count_body(state); }
BENCHMARK(BM_MpTreeLocked)
    ->Setup(setup_tree_locked)
    ->Teardown(teardown_backend)
    ->Arg(16)
    ->ThreadRange(1, 8)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
