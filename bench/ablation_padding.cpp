// Ablation for Cor 3.12: run the adversarial tree schedule against padded
// trees of increasing prefix length and locate the padding at which the
// violation disappears. Theory: the violation window is
// h*(c2 - 2*c1) - prefix*c1, so the cutoff is prefix = h*(k-2) with
// k = c2/c1 — exactly the corollary's prescription, at the cost of depth
// h*(k-1).
#include <cstdio>
#include <iostream>

#include "sim/scenarios.h"
#include "theory/bounds.h"
#include "topo/builders.h"
#include "util/table.h"

int main() {
  using namespace cnet;

  std::printf("Cor 3.12 padding ablation on Tree[w], adversarial schedule, tiny gap\n\n");

  Table table({"width", "h", "k=c2/c1", "prescribed h(k-2)", "prefix", "total depth",
               "violations"});
  for (std::uint32_t w : {8u, 32u}) {
    const std::uint32_t h = theory::tree_depth(w);
    for (std::uint32_t k : {3u, 4u, 6u}) {
      const double c1 = 1.0;
      const double c2 = static_cast<double>(k) * c1;
      const std::uint32_t prescribed = theory::padding_prefix_length(h, k);
      for (std::uint32_t prefix :
           {0u, prescribed / 2, prescribed - 1, prescribed, prescribed + 1, 2 * prescribed}) {
        const sim::ScenarioResult r =
            sim::padded_tree_probe(w, prefix, c1, c2, /*finish_start_gap=*/c1 / 512.0);
        table.add_row({std::to_string(w), std::to_string(h), std::to_string(k),
                       std::to_string(prescribed), std::to_string(prefix),
                       std::to_string(r.depth),
                       std::to_string(r.analysis.nonlinearizable_ops)});
      }
    }
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape: violations > 0 strictly below the prescribed prefix and 0 at\n"
      "or above it — linearizability restored at depth h*(k-1) (Cor 3.12), vs the\n"
      "impossibility of doing better than linear depth in general [12].\n");
  return 0;
}
