// Scalability on the simulated multiprocessor: the §1 motivation ("highly
// scalable ... eliminates sequential bottlenecks and contention") measured
// deterministically. Compares a single MCS-protected central counter (the
// classic bottleneck), the width-32 bitonic network, and the width-32
// diffracting tree at n = 1..256 simulated processors; reports completed
// operations per 1000 simulated cycles.
//
// This complements throughput_rt, which measures the same structures on the
// host hardware (and is limited by the host's core count).
#include <cstdio>
#include <iostream>

#include "psim/machine.h"
#include "topo/builders.h"
#include "util/table.h"

int main() {
  using namespace cnet;

  const topo::Network central = topo::make_balancer(1);  // 1x1 node + one counter
  const topo::Network bitonic = topo::make_bitonic(32);
  const topo::Network tree = topo::make_counting_tree(32);

  std::printf("Simulated-machine throughput (ops per 1000 cycles), 5000 ops per run\n\n");

  Table table({"n", "central MCS", "Bitonic[32]", "Tree[32] (prisms)", "tree/central"});
  for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    double throughput[3] = {};
    int idx = 0;
    for (const topo::Network* net : {&central, &bitonic, &tree}) {
      psim::MachineParams params;
      params.processors = n;
      params.total_ops = 5000;
      params.delayed_fraction = 0.0;
      params.wait_cycles = 0;
      params.seed = 42;
      params.use_diffraction = (net == &tree);
      if (params.use_diffraction) {
        // Saturation workload: size the root prism to the arrival rate
        // (~n/8 slots) rather than the delay-workload default.
        params.prism.width = std::max(2u, n / 8);
      }
      const psim::MachineResult result = psim::run_workload(*net, params);
      throughput[idx++] = 1000.0 * static_cast<double>(result.history.size()) /
                          static_cast<double>(result.makespan);
    }
    table.add_row({std::to_string(n), Table::num(throughput[0], 2),
                   Table::num(throughput[1], 2), Table::num(throughput[2], 2),
                   Table::num(throughput[2] / throughput[0], 2) + "x"});
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape: the central counter saturates at 1/critical-section while\n"
      "both networks keep scaling well past it. Our prism is deliberately the simple\n"
      "non-adaptive protocol of the paper's era, so the tree peaks around n=64-128;\n"
      "the adaptive prisms of [21] would sustain its advantage further.\n");
  return 0;
}
