// Scalability on the simulated multiprocessor: the §1 motivation ("highly
// scalable ... eliminates sequential bottlenecks and contention") measured
// deterministically. Compares a single MCS-protected central counter (the
// classic bottleneck), the width-32 bitonic network, and the width-32
// diffracting tree at n = 1..256 simulated processors; reports completed
// operations per 1000 simulated cycles.
//
// This complements throughput_rt, which measures the same structures on the
// host hardware (and is limited by the host's core count). All three
// configurations are spec strings through the run:: harness — this file
// contains no backend construction of its own.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "run/backend.h"
#include "run/runner.h"
#include "util/table.h"

int main() {
  using namespace cnet;

  std::printf("Simulated-machine throughput (ops per 1000 cycles), 5000 ops per run\n\n");

  Table table({"n", "central MCS", "Bitonic[32]", "Tree[32] (prisms)", "tree/central"});
  for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    // Saturation workload for the tree: size the root prism to the arrival
    // rate (~n/8 slots) rather than the delay-workload default.
    const std::string specs[3] = {
        "psim:balancer:1",  // 1x1 node + one counter
        "psim:bitonic:32",
        "psim:tree:32?diffraction=on&prism=" + std::to_string(std::max(2u, n / 8)),
    };
    run::Workload workload;
    workload.threads = n;
    workload.total_ops = 5000;
    workload.seed = 42;
    double throughput[3] = {};
    for (int idx = 0; idx < 3; ++idx) {
      const std::unique_ptr<run::CountingBackend> backend =
          run::make_backend(run::parse_spec_or_die(specs[idx]));
      run::Runner runner;
      const run::RunReport report = runner.run(*backend, workload);
      throughput[idx] =
          1000.0 * static_cast<double>(report.history.size()) / report.makespan;
    }
    table.add_row({std::to_string(n), Table::num(throughput[0], 2),
                   Table::num(throughput[1], 2), Table::num(throughput[2], 2),
                   Table::num(throughput[2] / throughput[0], 2) + "x"});
  }
  table.print(std::cout);
  std::printf(
      "\nExpected shape: the central counter saturates at 1/critical-section while\n"
      "both networks keep scaling well past it. Our prism is deliberately the simple\n"
      "non-adaptive protocol of the paper's era, so the tree peaks around n=64-128;\n"
      "the adaptive prisms of [21] would sustain its advantage further.\n");
  return 0;
}
