// Figure 7 of the paper: the average c2/c1 ratio, estimated as
// (Tog + W) / Tog where Tog is the measured mean wait before toggling a
// balancer, for both structures, both workloads (F = 50% and 25%), all
// concurrency levels and all W. The paper's measured values are printed
// alongside ours for a direct shape comparison.
#include <cstdio>
#include <iostream>
#include <map>

#include "fig_common.h"

namespace {

// Figure 7 of the paper, transcribed: [structure][F][W] -> values for
// n = 4, 16, 64, 128, 256.
struct PaperRow {
  const char* structure;
  int f_percent;
  unsigned long long wait;
  double values[5];
};

constexpr PaperRow kPaper[] = {
    {"bitonic", 50, 100, {1.45, 1.39, 1.25, 1.22, 1.18}},
    {"bitonic", 50, 1000, {5.67, 5.03, 3.70, 3.24, 2.73}},
    {"bitonic", 50, 10000, {48.77, 41.26, 27.98, 24.49, 21.21}},
    {"bitonic", 50, 100000, {483.0, 410.21, 280.27, 244.34, 215.22}},
    {"bitonic", 25, 100, {1.45, 1.39, 1.25, 1.22, 1.17}},
    {"bitonic", 25, 1000, {5.54, 4.95, 3.56, 3.16, 2.68}},
    {"bitonic", 25, 10000, {46.18, 40.15, 26.67, 23.39, 19.63}},
    {"bitonic", 25, 100000, {456.70, 395.70, 262.08, 226.80, 193.06}},
    {"dtree", 50, 100, {1.11, 1.11, 1.10, 1.11, 1.11}},
    {"dtree", 50, 1000, {2.06, 2.06, 1.94, 2.01, 2.09}},
    {"dtree", 50, 10000, {12.14, 11.55, 10.10, 10.57, 11.36}},
    {"dtree", 50, 100000, {115.54, 107.39, 91.86, 96.72, 105.62}},
    {"dtree", 25, 100, {1.11, 1.11, 1.10, 1.11, 1.11}},
    {"dtree", 25, 1000, {2.06, 2.08, 1.96, 2.03, 2.09}},
    {"dtree", 25, 10000, {11.67, 11.70, 10.38, 10.97, 11.78}},
    {"dtree", 25, 100000, {108.42, 107.96, 93.89, 101.02, 109.12}},
};

}  // namespace

int main() {
  using namespace cnet;
  using namespace cnet::bench;

  std::printf("Figure 7: average c2/c1 = (Tog + W) / Tog\n");
  std::printf("Each cell: measured (paper). Width-32 structures, 5000 ops per run.\n\n");

  std::map<std::pair<bool, int>, Grid> grids;
  for (int f : {50, 25}) {
    const Grid grid = run_grid(f / 100.0, 5000, 20260704);
    for (const PaperRow& paper : kPaper) {
      if (paper.f_percent != f) continue;
      const bool diffracting = std::string(paper.structure) == "dtree";
      // locate wait index
      std::size_t wi = 0;
      while (wait_axis()[wi] != paper.wait) ++wi;
      std::printf("%-7s F=%d%% W=%-6llu:", paper.structure, f, paper.wait);
      for (std::size_t ni = 0; ni < concurrency_axis().size(); ++ni) {
        const CellResult& cell = grid[diffracting ? 1 : 0][wi][ni];
        std::printf("  n=%-3u %8.2f (%.2f)", concurrency_axis()[ni], cell.avg_c2_over_c1,
                    paper.values[ni]);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "Shape checks: ratios ~paper magnitude per (structure, W); bitonic ratios fall\n"
      "with n (queueing raises Tog); dtree ratios flat in n (prism spin dominates Tog).\n");
  return 0;
}
