// The §1/§4 adversarial executions, replayed in the event-level timing
// simulator: the depth-1 example, Thm 4.1 (trees), Thm 4.3 (bitonic) and
// Thm 4.4 (constant-fraction waves), with the theory thresholds printed
// alongside the measured outcome.
#include <cstdio>
#include <iostream>

#include "sim/scenarios.h"
#include "theory/bounds.h"
#include "topo/builders.h"
#include "util/table.h"

int main() {
  using namespace cnet;

  std::printf("Section 1 example: Balancer[2], c1 = 1, c2 = (2 + eps)\n");
  {
    Table table({"eps", "c2/c1", "T0 value", "T1 value", "T2 value", "violations"});
    for (double eps : {0.1, 0.5, 2.0}) {
      const sim::ScenarioResult r = sim::section1_example(1.0, eps);
      table.add_row({Table::num(eps, 2), Table::num(r.c2 / r.c1, 2),
                     std::to_string(r.history[0].value), std::to_string(r.history[1].value),
                     std::to_string(r.history[2].value),
                     std::to_string(r.analysis.nonlinearizable_ops)});
    }
    table.print(std::cout);
  }

  std::printf("\nTheorem 4.1: counting trees non-linearizable iff c2 > 2*c1\n");
  {
    Table table({"width", "depth", "c2/c1", "violations", "theory says"});
    for (std::uint32_t w : {8u, 32u}) {
      for (double ratio : {1.5, 1.99, 2.01, 3.0, 6.0}) {
        std::uint64_t violations = 0;
        if (ratio > 2.0) {
          violations = sim::theorem_4_1_tree(w, 1.0, ratio - 2.0).analysis.nonlinearizable_ops;
        } else {
          // Below the threshold no schedule violates: demonstrate with the
          // probe at the tightest gap we can express.
          sim::RandomExecutionParams params;
          params.tokens = 2000;
          params.c1 = 1.0;
          params.c2 = ratio;
          params.mean_interarrival = 0.02;
          violations = sim::random_execution(topo::make_counting_tree(w), params)
                           .analysis.nonlinearizable_ops;
        }
        table.add_row({std::to_string(w), std::to_string(theory::tree_depth(w)),
                       Table::num(ratio, 2), std::to_string(violations),
                       theory::violation_constructible(1.0, ratio) ? "constructible"
                                                                   : "linearizable"});
      }
    }
    table.print(std::cout);
  }

  std::printf("\nTheorem 4.3: bitonic networks non-linearizable iff c2 > 2*c1\n");
  {
    Table table({"width", "depth", "c2/c1", "violations"});
    for (std::uint32_t w : {8u, 32u}) {
      for (double eps : {0.01, 0.5, 4.0}) {
        const sim::ScenarioResult r = sim::theorem_4_3_bitonic(w, 1.0, eps);
        table.add_row({std::to_string(w), std::to_string(r.depth), Table::num(2.0 + eps, 2),
                       std::to_string(r.analysis.nonlinearizable_ops)});
      }
    }
    table.print(std::cout);
  }

  std::printf("\nTheorem 4.4: constant fraction non-linearizable past (3 + log w)/2\n");
  {
    Table table({"width", "threshold", "c2/c1", "ops", "violations", "fraction"});
    for (std::uint32_t w : {8u, 16u, 32u}) {
      const double threshold = theory::bitonic_wave_threshold(w);
      for (double factor : {0.8, 1.2, 2.0}) {
        const sim::ScenarioResult r = sim::theorem_4_4_waves(w, 1.0, threshold * factor);
        table.add_row({std::to_string(w), Table::num(threshold, 2),
                       Table::num(threshold * factor, 2),
                       std::to_string(r.analysis.total_ops),
                       std::to_string(r.analysis.nonlinearizable_ops),
                       Table::num(r.analysis.fraction() * 100.0, 1) + "%"});
      }
    }
    table.print(std::cout);
  }
  return 0;
}
