// cnet command-line tool: build, inspect, verify, and exercise counting
// networks without writing code.
//
//   cnet_cli info <bitonic|periodic|tree> <width>
//       structure summary: depth, nodes, layers, uniformity, theory bounds
//   cnet_cli dot <bitonic|periodic|tree> <width>
//       Graphviz rendering on stdout
//   cnet_cli verify <bitonic|periodic|tree> <width> [trials] [max-per-input]
//       randomized counting-property verification
//   cnet_cli simulate <bitonic|periodic|tree> <width> <tokens> <c2/c1> [seed]
//       random execution in the paper's timing model + Def 2.4 analysis
//   cnet_cli workload <bitonic|tree> <n> <F%> <W> [ops] [seed]
//       the paper's §5 experiment on the simulated multiprocessor
//   cnet_cli count <bitonic|periodic|tree> <width> <threads> <ops> [batch] [plan|walk]
//       real-thread throughput of the shared counter (compiled routing plan
//       by default; 'walk' selects the per-token graph walk for comparison)
//   cnet_cli stats <bitonic|periodic|tree> <width> <threads> <ops> [batch] [trace.json]
//       like count, but with the observability layer attached: prints the
//       full metrics snapshot (docs/OBSERVABILITY.md), the busiest
//       balancers, and the online c2/c1 estimate; optionally dumps a
//       chrome://tracing JSON of sampled token hops
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/counting_network.h"
#include "obs/backend_metrics.h"
#include "obs/registry.h"
#include "psim/machine.h"
#include "sim/exhaustive.h"
#include "sim/scenarios.h"
#include "theory/bounds.h"
#include "topo/builders.h"
#include "topo/dot.h"
#include "topo/validate.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace cnet;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cnet_cli info     <bitonic|periodic|tree> <width>\n"
               "  cnet_cli dot      <bitonic|periodic|tree> <width>\n"
               "  cnet_cli verify   <bitonic|periodic|tree> <width> [trials] [max-per-input]\n"
               "  cnet_cli simulate <bitonic|periodic|tree> <width> <tokens> <c2/c1> [seed]\n"
               "  cnet_cli workload <bitonic|tree> <n> <F%%> <W> [ops] [seed]\n"
               "  cnet_cli exhaustive <bitonic|periodic|tree> <width> <tokens> <c2/c1>"
               " [slots] [step]\n"
               "  cnet_cli count    <bitonic|periodic|tree> <width> <threads> <ops>"
               " [batch] [plan|walk]\n"
               "  cnet_cli stats    <bitonic|periodic|tree> <width> <threads> <ops>"
               " [batch] [trace.json]\n");
  return 2;
}

topo::Network build(const std::string& kind, std::uint32_t width) {
  if (kind == "bitonic") return topo::make_bitonic(width);
  if (kind == "periodic") return topo::make_periodic(width);
  if (kind == "tree") return topo::make_counting_tree(width);
  std::fprintf(stderr, "unknown topology '%s'\n", kind.c_str());
  std::exit(2);
}

int cmd_info(const std::string& kind, std::uint32_t width) {
  const topo::Network net = build(kind, width);
  std::printf("%s\n", net.name().c_str());
  std::printf("  inputs x outputs : %u x %u\n", net.input_width(), net.output_width());
  std::printf("  depth (links)    : %u\n", net.depth());
  std::printf("  balancing nodes  : %zu\n", net.node_count());
  std::printf("  uniform (Def 2.1): %s\n", net.is_uniform() ? "yes" : "no");
  std::printf("  layers           : ");
  for (const auto& layer : net.layers()) std::printf("%zu ", layer.size());
  std::printf("\n");
  std::printf("theory (c1 = 1):\n");
  std::printf("  linearizable for any timing with c2 <= 2 (Cor 3.9)\n");
  for (double c2 : {3.0, 4.0, 8.0}) {
    std::printf("  c2 = %.0f: safe finish-start separation %.0f (Thm 3.6), start-start %.0f"
                " (Lemma 3.7), padding for always-linearizable %u nodes (Cor 3.12)\n",
                c2, theory::finish_start_separation(net.depth(), 1.0, c2),
                theory::start_start_separation(net.depth(), 1.0, c2),
                theory::padding_prefix_length(net.depth(), static_cast<std::uint32_t>(c2)));
  }
  return 0;
}

int cmd_verify(const std::string& kind, std::uint32_t width, std::uint64_t trials,
               std::uint64_t max_per_input) {
  const topo::Network net = build(kind, width);
  Rng rng(0xc0ffee);
  const topo::VerifyResult result = topo::verify_counting_random(net, max_per_input, trials, rng);
  if (result.ok) {
    std::printf("OK: %s counts on %llu random input vectors (up to %llu tokens/input)\n",
                net.name().c_str(), static_cast<unsigned long long>(result.vectors_checked),
                static_cast<unsigned long long>(max_per_input));
    return 0;
  }
  std::printf("FAIL: %s\n", result.message.c_str());
  return 1;
}

int cmd_simulate(const std::string& kind, std::uint32_t width, std::uint32_t tokens,
                 double ratio, std::uint64_t seed) {
  const topo::Network net = build(kind, width);
  sim::RandomExecutionParams params;
  params.tokens = tokens;
  params.c1 = 1.0;
  params.c2 = ratio;
  params.mean_interarrival = 0.05;
  params.seed = seed;
  const sim::ScenarioResult result = sim::random_execution(net, params);
  std::printf("%s, %u tokens, c2/c1 = %.2f, seed %llu\n", net.name().c_str(), tokens, ratio,
              static_cast<unsigned long long>(seed));
  std::printf("  non-linearizable ops: %llu (%.4f%%), worst inversion %llu\n",
              static_cast<unsigned long long>(result.analysis.nonlinearizable_ops),
              result.analysis.fraction() * 100.0,
              static_cast<unsigned long long>(result.analysis.worst_inversion));
  std::printf("  theory: violations %s for this ratio (threshold 2.0)\n",
              theory::violation_constructible(1.0, ratio) ? "constructible" : "impossible");
  return 0;
}

int cmd_workload(const std::string& kind, std::uint32_t n, double f_percent, std::uint64_t wait,
                 std::uint64_t ops, std::uint64_t seed) {
  const bool tree = kind == "tree";
  const topo::Network net = tree ? topo::make_counting_tree(32) : topo::make_bitonic(32);
  psim::MachineParams params;
  params.processors = n;
  params.total_ops = ops;
  params.delayed_fraction = f_percent / 100.0;
  params.wait_cycles = wait;
  params.use_diffraction = tree;
  params.seed = seed;
  const psim::MachineResult result = psim::run_workload(net, params);
  std::printf("%s, n = %u, F = %.0f%%, W = %llu, %llu ops (seed %llu)\n", net.name().c_str(), n,
              f_percent, static_cast<unsigned long long>(wait),
              static_cast<unsigned long long>(ops), static_cast<unsigned long long>(seed));
  std::printf("  avg Tog             : %.1f cycles\n", result.avg_tog);
  std::printf("  avg c2/c1 (Fig 7)   : %.2f\n", result.avg_c2_over_c1);
  std::printf("  non-linearizable ops: %llu of %zu (%.3f%%)\n",
              static_cast<unsigned long long>(result.analysis.nonlinearizable_ops),
              result.history.size(), result.analysis.fraction() * 100.0);
  std::printf("  toggles/diffractions: %llu / %llu\n",
              static_cast<unsigned long long>(result.toggles),
              static_cast<unsigned long long>(result.diffractions));
  std::printf("  makespan            : %llu cycles\n",
              static_cast<unsigned long long>(result.makespan));
  return 0;
}

int cmd_exhaustive(const std::string& kind, std::uint32_t width, std::uint32_t tokens,
                   double ratio, std::uint32_t slots, double step) {
  const topo::Network net = build(kind, width);
  sim::ExhaustiveParams params;
  params.tokens = tokens;
  params.c1 = 1.0;
  params.c2 = ratio;
  params.entry_slots = slots;
  params.entry_step = step;
  const sim::ExhaustiveResult result = sim::exhaustive_search(net, params);
  std::printf("%s, %u tokens, c2/c1 = %.2f, %u-slot lattice (step %.3f)\n", net.name().c_str(),
              tokens, ratio, slots, step);
  std::printf("  schedules checked: %llu\n",
              static_cast<unsigned long long>(result.schedules_checked));
  if (!result.violation_found) {
    std::printf("  no violating schedule exists in this class\n");
    return 0;
  }
  std::printf("  VIOLATION — witness schedule:\n");
  for (std::size_t t = 0; t < result.witness.tokens.size(); ++t) {
    const auto& token = result.witness.tokens[t];
    std::printf("    T%zu: x%u @ %.3f, delays [", t, token.input, token.entry);
    for (std::size_t l = 0; l < token.link_delays.size(); ++l) {
      std::printf("%s%.2f", l ? " " : "", token.link_delays[l]);
    }
    std::printf("] -> value %llu at %.3f\n", static_cast<unsigned long long>(token.value),
                token.exit);
  }
  return 1;
}

int cmd_count(const std::string& kind, std::uint32_t width, unsigned threads, std::uint64_t ops,
              std::size_t batch, const std::string& engine_name) {
  SharedCounter::Config config;
  if (kind == "bitonic") {
    config.topology = Topology::kBitonic;
  } else if (kind == "periodic") {
    config.topology = Topology::kPeriodic;
  } else if (kind == "tree") {
    config.topology = Topology::kTree;
  } else {
    std::fprintf(stderr, "unknown topology '%s'\n", kind.c_str());
    return 2;
  }
  if (engine_name != "plan" && engine_name != "walk") {
    std::fprintf(stderr, "unknown engine '%s' (expected 'plan' or 'walk')\n",
                 engine_name.c_str());
    return 2;
  }
  threads = std::max(threads, 1u);
  batch = std::max<std::size_t>(batch, 1);
  config.width = width;
  config.max_threads = threads;
  const bool plan = engine_name == "plan";
  config.engine = plan ? rt::ExecutionEngine::kCompiledPlan : rt::ExecutionEngine::kGraphWalk;
  SharedCounter counter(config);

  const std::uint64_t per_thread = ops / threads;
  std::vector<std::vector<std::uint64_t>> values(threads);
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        values[t].resize(per_thread);
        std::span<std::uint64_t> mine(values[t]);
        while (!mine.empty()) {
          const std::size_t n = std::min(batch, mine.size());
          counter.next_batch(t, mine.first(n));
          mine = mine.subspan(n);
        }
      });
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::vector<std::uint64_t> all;
  all.reserve(per_thread * threads);
  for (auto& v : values) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (std::uint64_t i = 0; i < all.size(); ++i) {
    if (all[i] != i) {
      std::printf("FAIL: values do not form 0..%zu (rank %llu holds %llu)\n", all.size() - 1,
                  static_cast<unsigned long long>(i), static_cast<unsigned long long>(all[i]));
      return 1;
    }
  }
  std::printf("%s, %u threads x %llu ops, batch %zu, engine %s\n",
              counter.network().name().c_str(), threads,
              static_cast<unsigned long long>(per_thread), batch,
              plan ? "compiled-plan" : "graph-walk");
  std::printf("  values 0..%zu: all present exactly once\n", all.size() - 1);
  std::printf("  wall time : %.3f s\n", secs);
  std::printf("  throughput: %.2f M items/s\n",
              static_cast<double>(all.size()) / secs / 1e6);
  return 0;
}

int cmd_stats(const std::string& kind, std::uint32_t width, unsigned threads, std::uint64_t ops,
              std::size_t batch, const std::string& trace_path) {
  SharedCounter::Config config;
  if (kind == "bitonic") {
    config.topology = Topology::kBitonic;
  } else if (kind == "periodic") {
    config.topology = Topology::kPeriodic;
  } else if (kind == "tree") {
    config.topology = Topology::kTree;
  } else {
    std::fprintf(stderr, "unknown topology '%s'\n", kind.c_str());
    return 2;
  }
#if !CNET_OBS
  std::fprintf(stderr, "stats requires a CNET_OBS=1 build (reconfigure with -DCNET_OBS=ON)\n");
  return 2;
#endif
  threads = std::max(threads, 1u);
  batch = std::max<std::size_t>(batch, 1);
  config.width = width;
  config.max_threads = threads;

  obs::CounterMetrics metrics;
  // stats runs are short and diagnostic: sample densely so the latency
  // histograms and the trace are well-populated even for small `ops`.
  metrics.sample_period = 8;
  if (!trace_path.empty()) metrics.trace.enable();
  config.metrics = &metrics;
  SharedCounter counter(config);

  const std::uint64_t per_thread = ops / threads;
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        std::vector<std::uint64_t> out(batch);
        std::uint64_t remaining = per_thread;
        while (remaining != 0) {
          const std::size_t n = std::min<std::uint64_t>(batch, remaining);
          counter.next_batch(t, std::span<std::uint64_t>(out).first(n));
          remaining -= n;
        }
      });
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  obs::MetricsRegistry registry;
  metrics.register_into(registry);
  std::printf("%s, %u threads x %llu ops, batch %zu\n\n", counter.network().name().c_str(),
              threads, static_cast<unsigned long long>(per_thread), batch);
  std::fputs(registry.snapshot().to_text().c_str(), stdout);

  // Busiest balancers: where the token stream actually contends.
  const std::vector<std::uint64_t> visits = metrics.balancer_visits.values();
  std::vector<std::uint32_t> order(visits.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&visits](std::uint32_t a, std::uint32_t b) { return visits[a] > visits[b]; });
  std::printf("\nbusiest balancers (node: visits):\n");
  const std::size_t top = std::min<std::size_t>(order.size(), 8);
  for (std::size_t i = 0; i < top; ++i) {
    if (visits[order[i]] == 0) break;
    std::printf("  %4u: %llu\n", order[i],
                static_cast<unsigned long long>(visits[order[i]]));
  }
  std::printf("\nonline c2/c1 estimate: %.2f (hop-latency p90/p10; Cor 3.9 needs <= 2)\n",
              metrics.c2c1_estimate());
  std::printf("throughput: %.2f M items/s over %.3f s\n",
              static_cast<double>(per_thread) * threads / secs / 1e6, secs);

  if (!trace_path.empty()) {
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write '%s'\n", trace_path.c_str());
      return 1;
    }
    const std::string json = metrics.trace.dump_chrome_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("trace: %llu events -> %s (load in chrome://tracing)\n",
                static_cast<unsigned long long>(metrics.trace.size()), trace_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string kind = argv[2];
  if (command == "info" && argc >= 4) {
    return cmd_info(kind, static_cast<std::uint32_t>(std::atoi(argv[3])));
  }
  if (command == "dot" && argc >= 4) {
    std::cout << topo::to_dot(build(kind, static_cast<std::uint32_t>(std::atoi(argv[3]))));
    return 0;
  }
  if (command == "verify" && argc >= 4) {
    return cmd_verify(kind, static_cast<std::uint32_t>(std::atoi(argv[3])),
                      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 500,
                      argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 32);
  }
  if (command == "simulate" && argc >= 6) {
    return cmd_simulate(kind, static_cast<std::uint32_t>(std::atoi(argv[3])),
                        static_cast<std::uint32_t>(std::atoi(argv[4])), std::atof(argv[5]),
                        argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 1);
  }
  if (command == "exhaustive" && argc >= 6) {
    return cmd_exhaustive(kind, static_cast<std::uint32_t>(std::atoi(argv[3])),
                          static_cast<std::uint32_t>(std::atoi(argv[4])), std::atof(argv[5]),
                          argc > 6 ? static_cast<std::uint32_t>(std::atoi(argv[6])) : 8,
                          argc > 7 ? std::atof(argv[7]) : 0.5);
  }
  if (command == "count" && argc >= 6) {
    return cmd_count(kind, static_cast<std::uint32_t>(std::atoi(argv[3])),
                     static_cast<unsigned>(std::atoi(argv[4])),
                     std::strtoull(argv[5], nullptr, 10),
                     argc > 6 ? static_cast<std::size_t>(std::atoi(argv[6])) : 16,
                     argc > 7 ? argv[7] : "plan");
  }
  if (command == "stats" && argc >= 6) {
    return cmd_stats(kind, static_cast<std::uint32_t>(std::atoi(argv[3])),
                     static_cast<unsigned>(std::atoi(argv[4])),
                     std::strtoull(argv[5], nullptr, 10),
                     argc > 6 ? static_cast<std::size_t>(std::atoi(argv[6])) : 16,
                     argc > 7 ? argv[7] : "");
  }
  if (command == "workload" && argc >= 6) {
    return cmd_workload(kind, static_cast<std::uint32_t>(std::atoi(argv[3])),
                        std::atof(argv[4]), std::strtoull(argv[5], nullptr, 10),
                        argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 5000,
                        argc > 7 ? std::strtoull(argv[7], nullptr, 10) : 1);
  }
  return usage();
}
