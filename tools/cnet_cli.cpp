// cnet command-line tool: build, inspect, verify, and exercise counting
// networks without writing code.
//
// Topology commands (info, dot, simulate, workload, exhaustive) take the
// legacy positional form. The measurement commands (run, count, stats,
// verify) are spec-driven: anywhere they accept a network they take a
// BackendSpec string — `<family>:<structure>:<width>[?opt[&opt]...]`, e.g.
// `rt:bitonic:32?engine=plan` or `psim:tree:64?mcs&procs=128` (grammar in
// docs/HARNESS.md). count/stats/verify also still accept the positional
// `<kind> <width>` form, which is rewritten to a spec internally.
//
//   cnet_cli info <bitonic|periodic|tree> <width>
//       structure summary: depth, nodes, layers, uniformity, theory bounds
//   cnet_cli dot <bitonic|periodic|tree> <width>
//       Graphviz rendering on stdout
//   cnet_cli verify <spec | kind width> [trials] [max-per-input]
//       randomized counting-property verification
//   cnet_cli simulate <bitonic|periodic|tree> <width> <tokens> <c2/c1> [seed]
//       random execution in the paper's timing model + Def 2.4 analysis
//   cnet_cli workload <bitonic|tree> <n> <F%> <W> [ops] [seed]
//       the paper's §5 experiment on the simulated multiprocessor
//   cnet_cli exhaustive <bitonic|periodic|tree> <width> <tokens> <c2/c1> [slots] [step]
//       exhaustive schedule search for Def 2.4 violations
//   cnet_cli run <spec> [key=value ...]
//       any workload on any backend through the unified harness; prints the
//       full RunReport. Keys: threads, ops, batch, arrival, rate, burst,
//       gap, f, wait, seed
//   cnet_cli count <spec | kind width> <threads> <ops> [batch] [plan|walk]
//       closed-loop counting throughput (sugar for `run` with a closed
//       workload); exit 1 if the counting or step property fails
//   cnet_cli stats <spec | kind width> <threads> <ops> [batch] [trace.json]
//       like count on the rt family, with the observability layer attached:
//       prints the metrics snapshot (docs/OBSERVABILITY.md), the busiest
//       balancers, and the online c2/c1 estimate; optionally dumps a
//       chrome://tracing JSON of sampled token hops
//   cnet_cli serve <spec> [--port N] [--host A] [--uds PATH] [--loops N]
//                  [--unbatched] [--max-batch N] [--max-pending N]
//                  [--shed-threshold X]
//       serve the backend over TCP (docs/SERVICE.md protocol) — or over a
//       UNIX-domain socket with --uds — until SIGINT, sharded over N
//       independent event loops (default: the hardware concurrency); winds
//       down gracefully — stops accepting, drains every loop, prints the
//       merged serving stats — and exits 130, the same contract as an
//       interrupted run
//   cnet_cli record <spec> <trace.bin> [key=value ...]
//       run a workload on a live backend (rt or mp) with schedule capture:
//       every operation's routing decisions and stalls are recorded and the
//       interleaving is saved as a versioned binary trace (sched/trace.h),
//       replayable deterministically in psim. Same workload keys as `run`.
//   cnet_cli replay <trace.bin>
//       re-execute a captured trace as a fixed psim schedule and print its
//       Def 2.4 analysis plus a history digest — two replays of one trace
//       print identical lines, which is what makes a captured chaos run a
//       regression test
//   cnet_cli search <spec> [--budget N] [--procs N] [--ops N] [--stalls N]
//                   [--stall-cycles N] [--json PATH]
//       bounded adversarial schedule search over stall placements in psim
//       (spec must be the psim family), maximizing the Def 2.4 inversion
//       magnitude; prints a JSON report and rediscovers the paper's §4
//       construction on bitonic networks
//   cnet_cli deploy <spec> [--tiles N] [--threads N] [--ops N] [--batch N]
//                   [--max-restarts N] [--timeout S] [--pipeline]
//                   [--pipeline-sock] [--link-depth N] [--link-burst N]
//       multi-process deployment (docs/DEPLOY.md): the spec's `ws=` names a
//       shared-memory workspace holding the compiled rt plan, worker-tile
//       processes count through it, and a `fault=die:n` clause is realized
//       as a real SIGKILL of a tile every n completed operations followed
//       by a supervisor restart against the persistent workspace; prints
//       the merged cross-process report with its honest guarantee.
//       --pipeline (or spec `pipeline=1`) switches to the pipelined run:
//       ingress tiles stream batched requests over credit-based shm links
//       to a counter tile, a record tile commits histories;
//       --pipeline-sock swaps the links for the per-op socketpair-handoff
//       ablation (clean runs only)
//
// Exit codes: 0 success, 1 a property check failed, 2 usage error (unknown
// command, malformed spec or workload key), 130 run interrupted by SIGINT
// (after a graceful drain and a partial report).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "deploy/counter_deploy.h"
#include "obs/backend_metrics.h"
#include "psim/machine.h"
#include "run/backend.h"
#include "run/runner.h"
#include "sched/replay.h"
#include "sched/search.h"
#include "sched/trace.h"
#include "svc/server.h"
#include "sim/exhaustive.h"
#include "sim/scenarios.h"
#include "theory/bounds.h"
#include "topo/builders.h"
#include "topo/dot.h"
#include "topo/validate.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace cnet;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  cnet_cli info     <bitonic|periodic|tree> <width>\n"
      "  cnet_cli dot      <bitonic|periodic|tree> <width>\n"
      "  cnet_cli verify   <spec | kind width> [trials] [max-per-input]\n"
      "  cnet_cli simulate <bitonic|periodic|tree> <width> <tokens> <c2/c1> [seed]\n"
      "  cnet_cli workload <bitonic|tree> <n> <F%%> <W> [ops] [seed]\n"
      "  cnet_cli exhaustive <bitonic|periodic|tree> <width> <tokens> <c2/c1>"
      " [slots] [step]\n"
      "  cnet_cli run      <spec> [threads=N] [ops=N] [batch=N]\n"
      "                    [arrival=closed|poisson|burst] [rate=X] [burst=N] [gap=X]\n"
      "                    [f=X] [wait=N] [seed=N]\n"
      "  cnet_cli record   <spec> <trace.bin> [key=value ...]   (run keys)\n"
      "  cnet_cli replay   <trace.bin>\n"
      "  cnet_cli search   <spec> [--budget N] [--procs N] [--ops N] [--stalls N]\n"
      "                    [--stall-cycles N] [--json PATH]\n"
      "  cnet_cli count    <spec | kind width> <threads> <ops> [batch] [plan|walk]\n"
      "  cnet_cli stats    <spec | kind width> <threads> <ops> [batch] [trace.json]\n"
      "  cnet_cli serve    <spec> [--port N] [--host A] [--uds PATH] [--loops N]\n"
      "                    [--unbatched] [--max-batch N] [--max-pending N]\n"
      "                    [--shed-threshold X]\n"
      "  cnet_cli deploy   <spec> [--tiles N] [--threads N] [--ops N] [--batch N]\n"
      "                    [--max-restarts N] [--timeout S] [--pipeline]\n"
      "                    [--pipeline-sock] [--link-depth N] [--link-burst N]\n"
      "spec grammar: <family>:<structure>:<width>[?opt[&opt]...]  (docs/HARNESS.md)\n"
      "  families: sim, psim, rt, mp   structures: bitonic, periodic, tree, balancer\n"
      "  e.g. rt:bitonic:32?engine=plan   psim:tree:64?mcs&procs=128\n");
  return 2;
}

topo::Network build(const std::string& kind, std::uint32_t width) {
  if (kind == "bitonic") return topo::make_bitonic(width);
  if (kind == "periodic") return topo::make_periodic(width);
  if (kind == "tree") return topo::make_counting_tree(width);
  std::fprintf(stderr, "unknown topology '%s'\n", kind.c_str());
  std::exit(2);
}

/// Parses `text` as a BackendSpec; on failure prints the diagnostic and
/// exits 2 (usage error), so commands can assume a valid spec.
run::BackendSpec parse_spec_or_exit(const std::string& text) {
  run::BackendSpec spec;
  std::string error;
  if (!run::parse_spec(text, &spec, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    std::exit(2);
  }
  return spec;
}

bool looks_like_spec(const char* arg) { return std::strchr(arg, ':') != nullptr; }

/// Applies one `key=value` workload argument; false (with a diagnostic on
/// stderr) on unknown keys or ill-typed values.
bool apply_workload_arg(const std::string& arg, run::Workload* workload) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size()) {
    std::fprintf(stderr, "workload argument '%s' is not key=value\n", arg.c_str());
    return false;
  }
  const std::string key = arg.substr(0, eq);
  const std::string value = arg.substr(eq + 1);
  char* end = nullptr;
  const auto as_u64 = [&] { return std::strtoull(value.c_str(), &end, 10); };
  const auto as_f64 = [&] { return std::strtod(value.c_str(), &end); };
  if (key == "threads") {
    workload->threads = static_cast<std::uint32_t>(as_u64());
  } else if (key == "ops") {
    workload->total_ops = as_u64();
  } else if (key == "batch") {
    workload->batch = static_cast<std::uint32_t>(as_u64());
  } else if (key == "arrival") {
    if (value == "closed") {
      workload->arrival = run::Arrival::kClosed;
    } else if (value == "poisson") {
      workload->arrival = run::Arrival::kPoisson;
    } else if (value == "burst") {
      workload->arrival = run::Arrival::kBurst;
    } else {
      std::fprintf(stderr, "arrival '%s' is not closed, poisson, or burst\n", value.c_str());
      return false;
    }
    return true;
  } else if (key == "rate") {
    workload->rate = as_f64();
  } else if (key == "burst") {
    workload->burst_size = static_cast<std::uint32_t>(as_u64());
  } else if (key == "gap") {
    workload->burst_gap = as_f64();
  } else if (key == "f") {
    workload->delayed_fraction = as_f64();
  } else if (key == "wait") {
    workload->wait = as_u64();
  } else if (key == "seed") {
    workload->seed = as_u64();
  } else {
    std::fprintf(stderr,
                 "unknown workload key '%s' (valid: threads, ops, batch, arrival, rate,"
                 " burst, gap, f, wait, seed)\n",
                 key.c_str());
    return false;
  }
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "workload key '%s' has a malformed value '%s'\n", key.c_str(),
                 value.c_str());
    return false;
  }
  return true;
}

int cmd_info(const std::string& kind, std::uint32_t width) {
  const topo::Network net = build(kind, width);
  std::printf("%s\n", net.name().c_str());
  std::printf("  inputs x outputs : %u x %u\n", net.input_width(), net.output_width());
  std::printf("  depth (links)    : %u\n", net.depth());
  std::printf("  balancing nodes  : %zu\n", net.node_count());
  std::printf("  uniform (Def 2.1): %s\n", net.is_uniform() ? "yes" : "no");
  std::printf("  layers           : ");
  for (const auto& layer : net.layers()) std::printf("%zu ", layer.size());
  std::printf("\n");
  std::printf("theory (c1 = 1):\n");
  std::printf("  linearizable for any timing with c2 <= 2 (Cor 3.9)\n");
  for (double c2 : {3.0, 4.0, 8.0}) {
    std::printf("  c2 = %.0f: safe finish-start separation %.0f (Thm 3.6), start-start %.0f"
                " (Lemma 3.7), padding for always-linearizable %u nodes (Cor 3.12)\n",
                c2, theory::finish_start_separation(net.depth(), 1.0, c2),
                theory::start_start_separation(net.depth(), 1.0, c2),
                theory::padding_prefix_length(net.depth(), static_cast<std::uint32_t>(c2)));
  }
  return 0;
}

int cmd_verify(const topo::Network& net, std::uint64_t trials, std::uint64_t max_per_input) {
  Rng rng(0xc0ffee);
  const topo::VerifyResult result = topo::verify_counting_random(net, max_per_input, trials, rng);
  if (result.ok) {
    std::printf("OK: %s counts on %llu random input vectors (up to %llu tokens/input)\n",
                net.name().c_str(), static_cast<unsigned long long>(result.vectors_checked),
                static_cast<unsigned long long>(max_per_input));
    return 0;
  }
  std::printf("FAIL: %s\n", result.message.c_str());
  return 1;
}

int cmd_simulate(const std::string& kind, std::uint32_t width, std::uint32_t tokens,
                 double ratio, std::uint64_t seed) {
  const topo::Network net = build(kind, width);
  sim::RandomExecutionParams params;
  params.tokens = tokens;
  params.c1 = 1.0;
  params.c2 = ratio;
  params.mean_interarrival = 0.05;
  params.seed = seed;
  const sim::ScenarioResult result = sim::random_execution(net, params);
  std::printf("%s, %u tokens, c2/c1 = %.2f, seed %llu\n", net.name().c_str(), tokens, ratio,
              static_cast<unsigned long long>(seed));
  std::printf("  non-linearizable ops: %llu (%.4f%%), worst inversion %llu\n",
              static_cast<unsigned long long>(result.analysis.nonlinearizable_ops),
              result.analysis.fraction() * 100.0,
              static_cast<unsigned long long>(result.analysis.worst_inversion));
  std::printf("  theory: violations %s for this ratio (threshold 2.0)\n",
              theory::violation_constructible(1.0, ratio) ? "constructible" : "impossible");
  return 0;
}

int cmd_workload(const std::string& kind, std::uint32_t n, double f_percent, std::uint64_t wait,
                 std::uint64_t ops, std::uint64_t seed) {
  const bool tree = kind == "tree";
  const topo::Network net = tree ? topo::make_counting_tree(32) : topo::make_bitonic(32);
  psim::MachineParams params;
  params.processors = n;
  params.total_ops = ops;
  params.delayed_fraction = f_percent / 100.0;
  params.wait_cycles = wait;
  params.use_diffraction = tree;
  params.seed = seed;
  const psim::MachineResult result = psim::run_workload(net, params);
  std::printf("%s, n = %u, F = %.0f%%, W = %llu, %llu ops (seed %llu)\n", net.name().c_str(), n,
              f_percent, static_cast<unsigned long long>(wait),
              static_cast<unsigned long long>(ops), static_cast<unsigned long long>(seed));
  std::printf("  avg Tog             : %.1f cycles\n", result.avg_tog);
  std::printf("  avg c2/c1 (Fig 7)   : %.2f\n", result.avg_c2_over_c1);
  std::printf("  non-linearizable ops: %llu of %zu (%.3f%%)\n",
              static_cast<unsigned long long>(result.analysis.nonlinearizable_ops),
              result.history.size(), result.analysis.fraction() * 100.0);
  std::printf("  toggles/diffractions: %llu / %llu\n",
              static_cast<unsigned long long>(result.toggles),
              static_cast<unsigned long long>(result.diffractions));
  std::printf("  makespan            : %llu cycles\n",
              static_cast<unsigned long long>(result.makespan));
  return 0;
}

int cmd_exhaustive(const std::string& kind, std::uint32_t width, std::uint32_t tokens,
                   double ratio, std::uint32_t slots, double step) {
  const topo::Network net = build(kind, width);
  sim::ExhaustiveParams params;
  params.tokens = tokens;
  params.c1 = 1.0;
  params.c2 = ratio;
  params.entry_slots = slots;
  params.entry_step = step;
  const sim::ExhaustiveResult result = sim::exhaustive_search(net, params);
  std::printf("%s, %u tokens, c2/c1 = %.2f, %u-slot lattice (step %.3f)\n", net.name().c_str(),
              tokens, ratio, slots, step);
  std::printf("  schedules checked: %llu\n",
              static_cast<unsigned long long>(result.schedules_checked));
  if (!result.violation_found) {
    std::printf("  no violating schedule exists in this class\n");
    return 0;
  }
  std::printf("  VIOLATION — witness schedule:\n");
  for (std::size_t t = 0; t < result.witness.tokens.size(); ++t) {
    const auto& token = result.witness.tokens[t];
    std::printf("    T%zu: x%u @ %.3f, delays [", t, token.input, token.entry);
    for (std::size_t l = 0; l < token.link_delays.size(); ++l) {
      std::printf("%s%.2f", l ? " " : "", token.link_delays[l]);
    }
    std::printf("] -> value %llu at %.3f\n", static_cast<unsigned long long>(token.value),
                token.exit);
  }
  return 1;
}

/// Set by the SIGINT handler; the Runner's issuers poll it between ops.
std::atomic<bool> g_interrupt{false};

void on_sigint(int) { g_interrupt.store(true, std::memory_order_relaxed); }

int cmd_run(const run::BackendSpec& spec, const run::Workload& workload) {
  std::unique_ptr<run::CountingBackend> backend = run::make_backend(spec);
  run::Runner runner;
  // SIGINT means "stop measuring", not "tear the process down": issuers
  // wind down at the next op boundary, the backend drains, and the partial
  // report still prints — exit 130, shell convention for death-by-SIGINT.
  g_interrupt.store(false, std::memory_order_relaxed);
  auto* previous = std::signal(SIGINT, on_sigint);
  const run::RunReport report = runner.run(*backend, workload, &g_interrupt);
  std::signal(SIGINT, previous);
  if (!report.ok) {
    std::fprintf(stderr, "%s", report.to_text().c_str());
    return 2;
  }
  std::fputs(report.to_text().c_str(), stdout);
  if (report.interrupted) return 130;
  return report.counting_ok && report.step_ok ? 0 : 1;
}

int cmd_record(const run::BackendSpec& spec, const std::string& trace_path,
               const run::Workload& workload) {
  std::unique_ptr<run::CountingBackend> backend = run::make_backend(spec);
  sched::Recorder recorder;
  run::Runner runner;
  g_interrupt.store(false, std::memory_order_relaxed);
  auto* previous = std::signal(SIGINT, on_sigint);
  run::RunReport report = runner.run(*backend, workload, &g_interrupt, &recorder);
  std::signal(SIGINT, previous);
  if (!report.ok) {
    std::fprintf(stderr, "%s", report.to_text().c_str());
    return 2;
  }
  const sched::Trace trace =
      recorder.finish(report.history, spec.to_string(), workload.to_string());
  std::string error;
  if (!trace.save(trace_path, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  report.schedule_ref = trace_path;
  std::fputs(report.to_text().c_str(), stdout);
  std::printf("captured : %zu tokens -> %s (replay with `cnet_cli replay %s`)\n",
              trace.tokens.size(), trace_path.c_str(), trace_path.c_str());
  if (report.interrupted) return 130;
  return report.counting_ok && report.step_ok ? 0 : 1;
}

/// FNV-1a over the replayed history — one line that two runs of `replay`
/// must print identically for the determinism claim to be checkable by eye
/// (and by the CI round's diff).
std::uint64_t history_digest(const lin::History& history) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (const lin::Operation& op : history) {
    mix(static_cast<std::uint64_t>(op.start));
    mix(static_cast<std::uint64_t>(op.end));
    mix(op.value);
    mix(op.actor);
  }
  return h;
}

int cmd_replay(const std::string& trace_path) {
  sched::Trace trace;
  std::string error;
  if (!sched::Trace::load(trace_path, &trace, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  const run::BackendSpec spec = parse_spec_or_exit(trace.spec);
  const topo::Network net = spec.build_network();
  sched::ReplayOptions options;
  options.hop_cycles = spec.hop_cycles;
  const sched::ReplayResult result = sched::replay(net, trace, options);
  std::printf("trace    : %s (%zu tokens)\n", trace_path.c_str(), trace.tokens.size());
  std::printf("spec     : %s\n", trace.spec.c_str());
  std::printf("workload : %s\n", trace.workload.c_str());
  std::printf("replayed : %zu ops, makespan %llu cycles\n", result.history.size(),
              static_cast<unsigned long long>(result.makespan));
  std::printf("Def 2.4  : %llu non-linearizable of %llu (%.4f%%), worst inversion %llu\n",
              static_cast<unsigned long long>(result.analysis.nonlinearizable_ops),
              static_cast<unsigned long long>(result.analysis.total_ops),
              result.analysis.fraction() * 100.0,
              static_cast<unsigned long long>(result.analysis.worst_inversion));
  std::printf("digest   : %016llx\n",
              static_cast<unsigned long long>(history_digest(result.history)));
  return 0;
}

int cmd_search(const run::BackendSpec& spec, int argc, char** argv, int base) {
  if (spec.family != run::Family::kPsim) {
    std::fprintf(stderr,
                 "search enumerates schedules in the cycle simulator: the spec must use"
                 " the psim family (got '%s')\n",
                 spec.to_string().c_str());
    return 2;
  }
  sched::SearchOptions options;
  options.procs = spec.procs != 0 ? spec.procs : 4;
  options.hop_cycles = spec.hop_cycles;
  std::string json_path;
  for (int i = base; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--budget") {
      options.budget = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--procs") {
      options.procs = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--ops") {
      options.ops_per_proc = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--stalls") {
      options.max_stalls = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--stall-cycles") {
      options.stall_cycles = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--json") {
      json_path = value();
    } else {
      std::fprintf(stderr, "unknown search option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (options.procs == 0 || options.ops_per_proc == 0 || options.budget == 0 ||
      options.max_stalls == 0) {
    std::fprintf(stderr, "search needs --procs, --ops, --stalls, and --budget all >= 1\n");
    return 2;
  }
  const topo::Network net = spec.build_network();
  const sched::SearchResult result = sched::search(net, options);
  const std::string json = result.to_json(spec.to_string());
  std::fputs(json.c_str(), stdout);
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  return 0;
}

int cmd_serve(const run::BackendSpec& spec, int argc, char** argv, int base) {
  svc::ServerOptions options;
  for (int i = base; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      options.port = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (arg == "--host") {
      options.host = value();
    } else if (arg == "--uds") {
      options.uds_path = value();
    } else if (arg == "--loops") {
      const int loops = std::atoi(value());
      if (loops < 1) {
        std::fprintf(stderr,
                     "serve --loops must be >= 1 (got '%d'): the server needs at"
                     " least one event loop; omit the flag for the default"
                     " (hardware concurrency)\n",
                     loops);
        return 2;
      }
      options.loops = static_cast<std::uint32_t>(loops);
    } else if (arg == "--unbatched") {
      options.batching = false;
    } else if (arg == "--max-batch") {
      options.max_batch = std::max(1, std::atoi(value()));
    } else if (arg == "--max-pending") {
      options.max_pending = std::max(1, std::atoi(value()));
    } else if (arg == "--shed-threshold") {
      options.c2c1_shed_threshold = std::atof(value());
    } else {
      std::fprintf(stderr, "unknown serve option '%s'\n", arg.c_str());
      return 2;
    }
  }
  std::unique_ptr<run::CountingBackend> backend = run::make_backend(spec);
  svc::Server server(*backend, options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  const std::string endpoint = options.uds_path.empty()
                                   ? options.host + ":" + std::to_string(server.port())
                                   : "uds " + options.uds_path;
  std::printf("serving %s on %s (%u loop%s, %s, max-batch %u, max-pending %u)\n",
              spec.to_string().c_str(), endpoint.c_str(), server.loops(),
              server.loops() == 1 ? "" : "s",
              options.batching ? "batched" : "unbatched", options.max_batch,
              options.max_pending);
  std::fflush(stdout);

  // The same SIGINT contract as `run`: the signal means "stop serving", not
  // "tear the process down" — stop accepting, drain in-flight work, report,
  // and exit 130.
  g_interrupt.store(false, std::memory_order_relaxed);
  auto* previous = std::signal(SIGINT, on_sigint);
  while (!g_interrupt.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::signal(SIGINT, previous);
  server.stop();

  const svc::Server::Stats stats = server.stats();
  std::printf("shut down: %llu conns, %llu requests (%llu ok, %llu timeout, %llu shed,"
              " %llu protocol errors), %llu batches over %llu wakes (largest %llu)%s\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.responses_ok),
              static_cast<unsigned long long>(stats.responses_timeout),
              static_cast<unsigned long long>(stats.responses_shed),
              static_cast<unsigned long long>(stats.protocol_errors),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.wakes),
              static_cast<unsigned long long>(stats.largest_batch),
              server.timing_tripped() ? "; timing shed LATCHED" : "");
  return 130;
}

int cmd_deploy(const run::BackendSpec& spec, int argc, char** argv, int base) {
  deploy::DeployOptions options;
  options.spec = spec;
  bool explicit_threads = false;
  for (int i = base; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--tiles") {
      options.tiles = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--threads") {
      options.threads_per_tile = static_cast<std::uint32_t>(std::atoi(value()));
      explicit_threads = true;
    } else if (arg == "--ops") {
      options.total_ops = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--batch") {
      options.batch = std::max(1u, static_cast<std::uint32_t>(std::atoi(value())));
    } else if (arg == "--max-restarts") {
      options.max_restarts = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--timeout") {
      options.timeout_s = std::atof(value());
    } else if (arg == "--pipeline") {
      options.pipeline = true;
    } else if (arg == "--pipeline-sock") {
      // The per-op socketpair-handoff ablation (clean runs only); exists
      // so the isolation tax is reproducible from the command line.
      options.pipeline = true;
      options.transport = deploy::DeployOptions::PipeTransport::kSocketPair;
    } else if (arg == "--link-depth") {
      options.link_depth = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--link-burst") {
      options.link_burst = static_cast<std::uint32_t>(std::atoi(value()));
    } else {
      std::fprintf(stderr, "unknown deploy option '%s'\n", arg.c_str());
      return 2;
    }
  }
  // Pipeline tiles are single-stage loops; unless the user pinned a thread
  // count, default it to 1 instead of tripping the mode's validation.
  if ((options.pipeline || options.spec.pipeline) && !explicit_threads) {
    options.threads_per_tile = 1;
  }
  const std::uint32_t tiles = options.tiles != 0    ? options.tiles
                              : options.spec.tiles != 0 ? options.spec.tiles
                                                        : 2;
  std::string error;
  if (!deploy::validate_deploy_spec(options.spec, tiles, options.threads_per_tile, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  const deploy::DeployReport report = deploy::run_counter_deployment(options);
  if (!report.ok && !report.error.empty()) {
    std::fprintf(stderr, "%s", report.to_text().c_str());
    return 2;
  }
  std::fputs(report.to_text().c_str(), stdout);
  return report.ok ? 0 : 1;
}

int cmd_stats(const run::BackendSpec& spec, const run::Workload& workload,
              const std::string& trace_path) {
#if !CNET_OBS
  (void)spec;
  (void)workload;
  (void)trace_path;
  std::fprintf(stderr, "stats requires a CNET_OBS=1 build (reconfigure with -DCNET_OBS=ON)\n");
  return 2;
#else
  if (spec.family != run::Family::kRt) {
    std::fprintf(stderr, "stats attaches the rt observability sink: the spec must use the"
                         " rt family (got '%s')\n",
                 spec.to_string().c_str());
    return 2;
  }
  obs::CounterMetrics metrics;
  // stats runs are short and diagnostic: sample densely so the latency
  // histograms and the trace are well-populated even for small `ops`.
  metrics.sample_period = 8;
  if (!trace_path.empty()) metrics.trace.enable();
  run::RtBackend backend(spec, &metrics);
  run::Runner runner;
  const run::RunReport report = runner.run(backend, workload);
  if (!report.ok) {
    std::fprintf(stderr, "%s", report.to_text().c_str());
    return 2;
  }

  std::printf("%s, %s\n\n", backend.network().name().c_str(),
              workload.to_string().c_str());
  std::fputs(report.metrics.to_text().c_str(), stdout);

  // Busiest balancers: where the token stream actually contends.
  const std::vector<std::uint64_t> visits = metrics.balancer_visits.values();
  std::vector<std::uint32_t> order(visits.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&visits](std::uint32_t a, std::uint32_t b) { return visits[a] > visits[b]; });
  std::printf("\nbusiest balancers (node: visits):\n");
  const std::size_t top = std::min<std::size_t>(order.size(), 8);
  for (std::size_t i = 0; i < top; ++i) {
    if (visits[order[i]] == 0) break;
    std::printf("  %4u: %llu\n", order[i],
                static_cast<unsigned long long>(visits[order[i]]));
  }
  std::printf("\nonline c2/c1 estimate: %.2f (hop-latency p90/p10; Cor 3.9 needs <= 2)\n",
              report.c2c1_estimate);
  std::printf("throughput: %.2f M items/s over %.0f ns\n", report.throughput * 1e3,
              report.makespan);

  if (!trace_path.empty()) {
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write '%s'\n", trace_path.c_str());
      return 1;
    }
    const std::string json = metrics.trace.dump_chrome_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("trace: %llu events -> %s (load in chrome://tracing)\n",
                static_cast<unsigned long long>(metrics.trace.size()), trace_path.c_str());
  }
  return report.counting_ok && report.step_ok ? 0 : 1;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string kind = argv[2];
  if (command == "info" && argc >= 4) {
    return cmd_info(kind, static_cast<std::uint32_t>(std::atoi(argv[3])));
  }
  if (command == "dot" && argc >= 4) {
    std::cout << topo::to_dot(build(kind, static_cast<std::uint32_t>(std::atoi(argv[3]))));
    return 0;
  }
  if (command == "verify") {
    // Spec form: `verify <spec> [trials] [max]`. Positional form:
    // `verify <kind> <width> [trials] [max]`, rewritten to a sim spec (the
    // family is irrelevant — verify only needs the topology).
    std::string text;
    int base;
    if (looks_like_spec(argv[2])) {
      text = kind;
      base = 3;
    } else if (argc >= 4) {
      text = "sim:" + kind + ":" + argv[3];
      base = 4;
    } else {
      return usage();
    }
    const run::BackendSpec spec = parse_spec_or_exit(text);
    return cmd_verify(spec.build_network(),
                      argc > base ? std::strtoull(argv[base], nullptr, 10) : 500,
                      argc > base + 1 ? std::strtoull(argv[base + 1], nullptr, 10) : 32);
  }
  if (command == "simulate" && argc >= 6) {
    return cmd_simulate(kind, static_cast<std::uint32_t>(std::atoi(argv[3])),
                        static_cast<std::uint32_t>(std::atoi(argv[4])), std::atof(argv[5]),
                        argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 1);
  }
  if (command == "exhaustive" && argc >= 6) {
    return cmd_exhaustive(kind, static_cast<std::uint32_t>(std::atoi(argv[3])),
                          static_cast<std::uint32_t>(std::atoi(argv[4])), std::atof(argv[5]),
                          argc > 6 ? static_cast<std::uint32_t>(std::atoi(argv[6])) : 8,
                          argc > 7 ? std::atof(argv[7]) : 0.5);
  }
  if (command == "workload" && argc >= 6) {
    return cmd_workload(kind, static_cast<std::uint32_t>(std::atoi(argv[3])),
                        std::atof(argv[4]), std::strtoull(argv[5], nullptr, 10),
                        argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 5000,
                        argc > 7 ? std::strtoull(argv[7], nullptr, 10) : 1);
  }
  if (command == "serve") {
    return cmd_serve(parse_spec_or_exit(kind), argc, argv, 3);
  }
  if (command == "deploy") {
    return cmd_deploy(parse_spec_or_exit(kind), argc, argv, 3);
  }
  if (command == "run") {
    const run::BackendSpec spec = parse_spec_or_exit(kind);
    run::Workload workload;
    for (int i = 3; i < argc; ++i) {
      if (!apply_workload_arg(argv[i], &workload)) return 2;
    }
    return cmd_run(spec, workload);
  }
  if (command == "record") {
    if (argc < 4) return usage();
    const run::BackendSpec spec = parse_spec_or_exit(kind);
    run::Workload workload;
    for (int i = 4; i < argc; ++i) {
      if (!apply_workload_arg(argv[i], &workload)) return 2;
    }
    return cmd_record(spec, argv[3], workload);
  }
  if (command == "replay") {
    return cmd_replay(kind);
  }
  if (command == "search") {
    return cmd_search(parse_spec_or_exit(kind), argc, argv, 3);
  }
  if (command == "count" || command == "stats") {
    // `<spec> <threads> <ops> [batch] [tail]` or
    // `<kind> <width> <threads> <ops> [batch] [tail]`; the positional form
    // defaults to the rt family (the original behaviour of both commands).
    std::string text;
    int base;
    if (looks_like_spec(argv[2]) && argc >= 5) {
      text = kind;
      base = 3;
    } else if (argc >= 6) {
      text = "rt:" + kind + ":" + argv[3];
      base = 4;
    } else {
      return usage();
    }
    run::Workload workload;
    workload.threads = std::max(1u, static_cast<std::uint32_t>(std::atoi(argv[base])));
    workload.total_ops = std::strtoull(argv[base + 1], nullptr, 10);
    workload.batch =
        argc > base + 2 ? std::max(1u, static_cast<std::uint32_t>(std::atoi(argv[base + 2])))
                        : 16;
    const std::string tail = argc > base + 3 ? argv[base + 3] : "";
    if (command == "count") {
      if (!tail.empty() && tail != "plan" && tail != "walk") {
        std::fprintf(stderr, "unknown engine '%s' (expected 'plan' or 'walk')\n", tail.c_str());
        return 2;
      }
      if (tail == "walk") text += text.find('?') == std::string::npos ? "?engine=walk"
                                                                      : "&engine=walk";
      return cmd_run(parse_spec_or_exit(text), workload);
    }
    return cmd_stats(parse_spec_or_exit(text), workload, tail);
  }
  return usage();
}
