// cnet_loadgen — an open-loop Poisson load generator for the cnet service
// (svc/frame.h protocol; the client half of BENCH_svc and the CI smoke
// runs).
//
// Open loop means arrivals are paced by a clock, not by responses: each
// connection draws exponential inter-arrival gaps and sends on schedule even
// when replies lag, so server-side queueing — the thing boundary batching
// and admission control exist for — is actually exercised. The schedule is
// not merely "the same pacing as" the harness's poisson arrivals, it IS the
// harness's: the generator builds a run::Workload and drives it through the
// same OpenLoopPacer / issuer_seeds / issuer_quotas the in-process Runner
// uses, so `--connections C --ops N --rate R --seed S` over the wire issues
// the byte-identical arrival schedule as `run ... threads=C ops=N rate=R
// seed=S arrival=poisson` in process (tests/run_workload_test.cpp pins
// this). Responses drain opportunistically through the nonblocking
// poll_response path and are matched by request_id for latency measurement.
//
//   cnet_loadgen --port N [--host A] [--connections N] [--ops N]
//                [--rate OPS_PER_SEC] [--deadline-ns D --deadline-fraction F]
//                [--seed S] [--check]
//   cnet_loadgen --uds PATH [same options]    # UNIX-domain transport
//
// --check verifies the counting property over the wire: every kOk value
// distinct, and together forming a gapless range when the generator is the
// server's only client. Exit codes: 0 ok, 1 check failed or shed/errors
// when checking, 2 usage/connect error.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "run/workload.h"
#include "svc/client.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace cnet;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string uds_path;  ///< non-empty = connect over AF_UNIX instead of TCP
  std::uint32_t connections = 8;
  std::uint64_t ops = 20000;
  double rate = 200000.0;  ///< aggregate ops/s across all connections
  std::uint64_t deadline_ns = 0;
  double deadline_fraction = 0.0;
  std::uint64_t seed = 1;
  bool check = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: cnet_loadgen --port N | --uds PATH  [--host A] [--connections N]\n"
               "                    [--ops N] [--rate OPS_PER_SEC] [--deadline-ns D]\n"
               "                    [--deadline-fraction F] [--seed S] [--check]\n");
  return 2;
}

/// One connection's outcome, merged after the threads join.
struct ConnResult {
  bool ok = false;
  std::string error;
  std::uint64_t sent = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_timeout = 0;
  std::uint64_t responses_shed = 0;
  std::vector<std::uint64_t> values;       ///< kOk counter values (for --check)
  std::vector<double> latencies_ns;        ///< send→response, kOk only
};

double ns_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
}

/// The per-connection open loop: send on the workload's Poisson schedule,
/// drain whatever responses are ready, then block only for the stragglers.
void run_connection(const Options& options, const run::Workload& workload,
                    std::uint32_t conn_id, std::uint64_t quota, std::uint64_t seed,
                    Clock::time_point t0, ConnResult* result) {
  svc::Client client;
  const bool connected =
      options.uds_path.empty()
          ? client.connect(options.host, options.port, &result->error)
          : client.connect_uds(options.uds_path, &result->error);
  if (!connected) return;

  run::OpenLoopPacer pacer(workload, seed);
  Rng mix(seed ^ 0x9e3779b97f4a7c15ULL);
  std::unordered_map<std::uint64_t, double> sent_at;
  sent_at.reserve(quota);
  const auto drain = [&](bool block) {
    svc::Response response;
    for (;;) {
      bool got = false;
      if (block) {
        if (!client.recv_response(&response, &result->error)) return false;
        got = true;
        block = false;  // one blocking pull, then the cheap path
      } else if (!client.poll_response(&response, &got, &result->error)) {
        return false;
      }
      if (!got) return true;
      switch (response.status) {
        case svc::Status::kOk: {
          ++result->responses_ok;
          if (options.check) result->values.push_back(response.value);
          const auto at = sent_at.find(response.request_id);
          if (at != sent_at.end()) {
            result->latencies_ns.push_back(ns_since(t0) - at->second);
            sent_at.erase(at);
          }
          break;
        }
        case svc::Status::kTimeout: ++result->responses_timeout; break;
        case svc::Status::kShed: ++result->responses_shed; break;
        case svc::Status::kError:
          result->error = "server reported protocol error '" +
                          std::string(svc::wire_error_name(response.error)) + "'";
          return false;
      }
    }
  };

  // The pacer's schedule is relative to the stream's own start; offsetting
  // by the post-connect clock reproduces the historical behavior exactly.
  const double start_ns = ns_since(t0);
  for (std::uint64_t i = 0; i < quota; ++i) {
    const double next_arrival = start_ns + pacer.next_arrival_ns();
    while (ns_since(t0) < next_arrival) {
      if (!drain(false)) return;  // poll instead of spinning empty
    }
    // request_id encodes the connection so ids never collide across conns.
    const std::uint64_t id = (static_cast<std::uint64_t>(conn_id) << 40) | i;
    sent_at.emplace(id, ns_since(t0));
    if (options.deadline_fraction > 0.0 && mix.unit() < options.deadline_fraction) {
      client.queue_count_until(id, options.deadline_ns);
    } else {
      client.queue_count(id);
    }
    if (!client.flush(&result->error)) return;
    ++result->sent;
  }
  const std::uint64_t outstanding =
      quota - (result->responses_ok + result->responses_timeout + result->responses_shed);
  for (std::uint64_t i = 0; i < outstanding;) {
    const std::uint64_t before =
        result->responses_ok + result->responses_timeout + result->responses_shed;
    if (!drain(true)) return;
    i += (result->responses_ok + result->responses_timeout + result->responses_shed) - before;
  }
  result->ok = true;
}

double percentile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  const auto at = static_cast<std::size_t>(q * static_cast<double>(sorted->size() - 1));
  return (*sorted)[at];
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      options.host = value();
    } else if (arg == "--port") {
      options.port = static_cast<std::uint16_t>(std::atoi(value()));
    } else if (arg == "--uds") {
      options.uds_path = value();
    } else if (arg == "--connections") {
      options.connections = std::max(1, std::atoi(value()));
    } else if (arg == "--ops") {
      options.ops = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--rate") {
      options.rate = std::atof(value());
    } else if (arg == "--deadline-ns") {
      options.deadline_ns = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--deadline-fraction") {
      options.deadline_fraction = std::atof(value());
    } else if (arg == "--seed") {
      options.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--check") {
      options.check = true;
    } else {
      return usage();
    }
  }
  if ((options.port == 0 && options.uds_path.empty()) || options.rate <= 0.0) return usage();
  if (options.deadline_fraction > 0.0 && options.deadline_ns == 0) {
    std::fprintf(stderr, "--deadline-fraction needs --deadline-ns > 0\n");
    return 2;
  }

  // The wire run is the harness workload, verbatim: one issuer per
  // connection, with run::Workload owning the seed chain, the quota split,
  // and the exponential pacing. The Runner's in-process poisson issuers and
  // these threads derive identical schedules from identical parameters.
  run::Workload workload;
  workload.arrival = run::Arrival::kPoisson;
  workload.threads = options.connections;
  workload.total_ops = options.ops;
  workload.rate = options.rate;
  workload.seed = options.seed;
  const std::vector<std::uint64_t> seeds =
      run::issuer_seeds(workload.seed, options.connections);
  const std::vector<std::uint64_t> quotas =
      run::issuer_quotas(workload.total_ops, options.connections);

  std::vector<ConnResult> results(options.connections);
  const Clock::time_point t0 = Clock::now();
  {
    std::vector<std::jthread> threads;
    threads.reserve(options.connections);
    for (std::uint32_t c = 0; c < options.connections; ++c) {
      threads.emplace_back(run_connection, std::cref(options), std::cref(workload), c,
                           quotas[c], seeds[c], t0, &results[c]);
    }
  }
  const double elapsed_ns = ns_since(t0);

  ConnResult total;
  std::vector<double> latencies;
  std::vector<std::uint64_t> values;
  bool all_ok = true;
  for (const ConnResult& r : results) {
    if (!r.ok) {
      all_ok = false;
      std::fprintf(stderr, "connection failed: %s\n",
                   r.error.empty() ? "(no diagnostic)" : r.error.c_str());
    }
    total.sent += r.sent;
    total.responses_ok += r.responses_ok;
    total.responses_timeout += r.responses_timeout;
    total.responses_shed += r.responses_shed;
    latencies.insert(latencies.end(), r.latencies_ns.begin(), r.latencies_ns.end());
    values.insert(values.end(), r.values.begin(), r.values.end());
  }
  std::sort(latencies.begin(), latencies.end());

  std::printf("cnet_loadgen: %u connections, %llu ops @ %.0f ops/s aggregate\n",
              options.connections, static_cast<unsigned long long>(options.ops), options.rate);
  std::printf("  sent %llu  ok %llu  timeout %llu  shed %llu\n",
              static_cast<unsigned long long>(total.sent),
              static_cast<unsigned long long>(total.responses_ok),
              static_cast<unsigned long long>(total.responses_timeout),
              static_cast<unsigned long long>(total.responses_shed));
  std::printf("  elapsed %.1f ms, %.0f counts/s completed\n", elapsed_ns / 1e6,
              static_cast<double>(total.responses_ok) / (elapsed_ns / 1e9));
  if (!latencies.empty()) {
    std::printf("  latency p50 %.1f us  p90 %.1f us  p99 %.1f us  max %.1f us\n",
                percentile(&latencies, 0.50) / 1e3, percentile(&latencies, 0.90) / 1e3,
                percentile(&latencies, 0.99) / 1e3, latencies.back() / 1e3);
  }
  if (!all_ok) return 2;

  if (options.check) {
    // Counting property over the wire (valid when this generator is the
    // server's only client): kOk values are distinct and gapless.
    std::sort(values.begin(), values.end());
    for (std::size_t i = 1; i < values.size(); ++i) {
      if (values[i] == values[i - 1]) {
        std::printf("  CHECK FAIL: duplicate value %llu\n",
                    static_cast<unsigned long long>(values[i]));
        return 1;
      }
    }
    // Timeouts park values for later recycling, so gaps are legal only
    // when timeouts (or sheds) happened.
    if (total.responses_timeout == 0 && total.responses_shed == 0 && !values.empty() &&
        values.back() - values.front() + 1 != values.size()) {
      std::printf("  CHECK FAIL: values not gapless (span %llu, count %zu)\n",
                  static_cast<unsigned long long>(values.back() - values.front() + 1),
                  values.size());
      return 1;
    }
    std::printf("  check: %zu distinct values, counting property holds over the wire\n",
                values.size());
  }
  return 0;
}
